//! Attribute values.

use crate::intern::Sym;
use std::cmp::Ordering;
use std::fmt;

/// A single attribute value.
///
/// The engine is deliberately minimal: the paper's workloads only require
/// integers (keys, years, quantities — TPC-H decimals are scaled to integer
/// cents by the generator) and strings (names, titles). Strings are interned,
/// so `Value` is `Copy`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// Interned string.
    Str(Sym),
}

impl Value {
    /// Build a string value, interning `s`.
    pub fn str(s: &str) -> Value {
        Value::Str(Sym::new(s))
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&'static str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s.as_str()),
        }
    }

    /// Human-readable type name, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Str(_) => "string",
        }
    }
}

/// Total order: integers before strings; integers numerically; strings
/// lexicographically. Comparison predicates in rule bodies (`<`, `≤`, …)
/// use this ordering.
impl Ord for Value {
    fn cmp(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.as_str().cmp(b.as_str()),
            (Value::Int(_), Value::Str(_)) => Ordering::Less,
            (Value::Str(_), Value::Int(_)) => Ordering::Greater,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ordering_is_numeric() {
        assert!(Value::Int(2) < Value::Int(10));
        assert!(Value::Int(-5) < Value::Int(0));
    }

    #[test]
    fn string_ordering_is_lexicographic_not_interning_order() {
        // Intern in reverse lexicographic order on purpose.
        let z = Value::str("zzz-order-test");
        let a = Value::str("aaa-order-test");
        assert!(a < z);
    }

    #[test]
    fn cross_type_ordering_is_stable() {
        assert!(Value::Int(i64::MAX) < Value::str("a"));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_str(), None);
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::str("x").as_int(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("NSF").to_string(), "NSF");
    }
}

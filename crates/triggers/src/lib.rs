//! # triggers — "after delete, delete" SQL trigger simulation
//!
//! Section 6 of *"On Multiple Semantics for Declarative Database Repairs"*
//! compares the four semantics against SQL triggers in PostgreSQL and MySQL.
//! The decisive difference between the systems is the **firing order** of
//! several triggers attached to the same event:
//!
//! * PostgreSQL fires them **alphabetically by trigger name**;
//! * MySQL fires them in **creation order**.
//!
//! This crate interprets a delta program as a set of triggers over the
//! in-memory engine and reproduces both policies:
//!
//! * a rule *without* delta atoms in its body acts as an initiating `DELETE`
//!   statement (the event that starts the repair);
//! * a rule *with* a delta atom over `R_j` is an `AFTER DELETE ON R_j FOR
//!   EACH ROW` trigger whose action deletes the head tuples matching the
//!   deleted row.
//!
//! Execution is row-level and eager, like MySQL's `FOR EACH ROW` and close
//! enough to PostgreSQL's row-level AFTER triggers for the phenomena the
//! paper reports (e.g. program 4, where firing the author-deleting trigger
//! first removes every author of an organization and then starves the
//! organization-deleting trigger, producing a much larger repair than step
//! semantics would).

use datalog::{DeltaFrontier, Evaluator, Mode, Program};
use std::collections::VecDeque;
use storage::{Instance, State, TupleId};

/// The firing-order policy for triggers attached to the same event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FiringOrder {
    /// PostgreSQL: alphabetical by trigger name.
    Alphabetical,
    /// MySQL: order of creation.
    CreationOrder,
}

/// One trigger: a name (PostgreSQL sorts by it) and the delta rule it
/// executes.
#[derive(Clone, Debug)]
pub struct Trigger {
    /// Trigger name.
    pub name: String,
    /// Index of the rule in the program.
    pub rule: usize,
}

/// Derive a default trigger set from a program: one trigger per rule, named
/// `t<rule>_<head relation>` (so alphabetical order equals creation order
/// until callers rename them, as the paper's scenarios do).
pub fn triggers_from_program(program: &Program) -> Vec<Trigger> {
    program
        .rules
        .iter()
        .enumerate()
        .map(|(i, r)| Trigger {
            name: format!("t{}_{}", i, r.head.relation.to_lowercase()),
            rule: i,
        })
        .collect()
}

/// Result of a trigger cascade.
#[derive(Clone, Debug)]
pub struct TriggerRun {
    /// All tuples deleted, sorted.
    pub deleted: Vec<TupleId>,
    /// Final state.
    pub state: State,
    /// Number of trigger/statement activations that deleted at least one
    /// row.
    pub activations: usize,
    /// Is the final state stable w.r.t. the program? (Triggers do not
    /// guarantee stability; the four semantics do.)
    pub stable: bool,
}

/// Execute the trigger simulation.
///
/// Initiating statements (rules without delta atoms) run one at a time in
/// firing order, each cascading to exhaustion before the next starts —
/// matching sequential SQL statements.
pub fn run_triggers(
    db: &Instance,
    ev: &Evaluator,
    triggers: &[Trigger],
    order: FiringOrder,
) -> TriggerRun {
    let mut ordered: Vec<&Trigger> = triggers.iter().collect();
    if order == FiringOrder::Alphabetical {
        ordered.sort_by(|a, b| a.name.cmp(&b.name));
    }
    let seeds: Vec<&Trigger> = ordered
        .iter()
        .copied()
        .filter(|t| !ev.rule_has_delta_body(t.rule))
        .collect();
    let reactive: Vec<&Trigger> = ordered
        .iter()
        .copied()
        .filter(|t| ev.rule_has_delta_body(t.rule))
        .collect();

    let mut state = db.initial_state();
    let mut activations = 0usize;

    for seed in seeds {
        // The initiating DELETE statement for this rule.
        let mut heads: Vec<TupleId> = Vec::new();
        ev.for_each_rule_assignment(seed.rule, db, &state, Mode::Current, &mut |a| {
            if !heads.contains(&a.head) {
                heads.push(a.head);
            }
            true
        });
        if heads.is_empty() {
            continue;
        }
        activations += 1;
        let mut queue: VecDeque<TupleId> = VecDeque::new();
        for h in heads {
            if state.is_present(h) {
                state.delete(h);
                queue.push_back(h);
            }
        }
        cascade(db, ev, &reactive, &mut state, &mut queue, &mut activations);
    }

    let deleted = state.all_delta_rows();
    let stable = ev.is_stable(db, &state);
    TriggerRun {
        deleted,
        state,
        activations,
        stable,
    }
}

/// Drain the row-event queue: for each deleted row, fire every trigger
/// listening on its relation, in order, applying each trigger's deletions
/// immediately.
fn cascade(
    db: &Instance,
    ev: &Evaluator,
    reactive: &[&Trigger],
    state: &mut State,
    queue: &mut VecDeque<TupleId>,
    activations: &mut usize,
) {
    while let Some(row) = queue.pop_front() {
        for trig in reactive {
            if !ev.rule_listens_to(trig.rule, row.rel) {
                continue;
            }
            let mut frontier = DeltaFrontier::empty(db);
            frontier.insert(row);
            let mut heads: Vec<TupleId> = Vec::new();
            ev.for_each_rule_frontier_assignment(
                trig.rule,
                db,
                state,
                Mode::Current,
                &frontier,
                &mut |a| {
                    if state.is_present(a.head) && !heads.contains(&a.head) {
                        heads.push(a.head);
                    }
                    true
                },
            );
            if heads.is_empty() {
                continue;
            }
            *activations += 1;
            for h in heads {
                if state.is_present(h) {
                    state.delete(h);
                    queue.push_back(h);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog::parse_program;
    use repair_core::testkit::{figure1_instance, figure2_program, names_of};
    use repair_core::{RepairSession, Semantics};

    #[test]
    fn cascade_on_running_example_matches_stage_like_behaviour() {
        // All five Figure-2 rules as triggers: the seed deletes g2; cascades
        // delete authors, then writes/pubs. Eager row-level firing lets rule
        // (3) fire for a pub whose Writes row is still present.
        let mut db = figure1_instance();
        let ev = Evaluator::new(&mut db, figure2_program()).unwrap();
        let trigs = triggers_from_program(ev.program());
        let run = run_triggers(&db, &ev, &trigs, FiringOrder::CreationOrder);
        assert!(run.stable);
        // g2, a2, a3 always go; then per author the Pub trigger (rule 2,
        // created before rule 3) deletes the pub first, starving the Writes
        // trigger.
        assert!(names_of(&db, &run.deleted).contains(&"Grant(2, ERC)".to_owned()));
        assert!(run.deleted.len() >= 5);
    }

    #[test]
    fn firing_order_changes_the_result() {
        // Program-4 shape: two triggers on the same seed event. Whichever
        // fires first starves the other.
        let mut db = figure1_instance();
        // Seed: delete the ERC grant; then two triggers with the same body
        // delete either the AuthGrant or the Author tuples.
        let program = parse_program(
            "delta Grant(g, n) :- Grant(g, n), n = 'ERC'.
             delta Author(a, n) :- Author(a, n), AuthGrant(a, g), delta Grant(g, gn).
             delta AuthGrant(a, g) :- Author(a, n), AuthGrant(a, g), delta Grant(g, gn).",
        )
        .unwrap();
        let ev = Evaluator::new(&mut db, program).unwrap();
        // Name them so that alphabetical order REVERSES creation order.
        let trigs = vec![
            Trigger {
                name: "z_seed".into(),
                rule: 0,
            },
            Trigger {
                name: "b_author".into(),
                rule: 1,
            },
            Trigger {
                name: "a_authgrant".into(),
                rule: 2,
            },
        ];
        let pg = run_triggers(&db, &ev, &trigs, FiringOrder::Alphabetical);
        let my = run_triggers(&db, &ev, &trigs, FiringOrder::CreationOrder);
        // Alphabetical: a_authgrant fires first → deletes AuthGrant rows →
        // author trigger starved. Creation: b_author fires first → deletes
        // authors → authgrant trigger starved.
        let pg_names = names_of(&db, &pg.deleted);
        let my_names = names_of(&db, &my.deleted);
        assert!(pg_names.contains(&"AuthGrant(4, 2)".to_owned()));
        assert!(!pg_names.contains(&"Author(4, Marge)".to_owned()));
        assert!(my_names.contains(&"Author(4, Marge)".to_owned()));
        assert!(!my_names.contains(&"AuthGrant(4, 2)".to_owned()));
        assert_ne!(pg_names, my_names);
        assert!(pg.stable && my.stable);
    }

    #[test]
    fn triggers_can_over_delete_relative_to_step() {
        // The same scenario under step semantics deletes fewer tuples than
        // the eager trigger cascade on Figure 2 (step avoids the Pub/Writes
        // double deletion).
        let session = RepairSession::new(figure1_instance(), figure2_program()).unwrap();
        let step = session.run(Semantics::Step);
        let trigs = triggers_from_program(session.program());
        let run = run_triggers(
            session.db(),
            session.evaluator(),
            &trigs,
            FiringOrder::CreationOrder,
        );
        assert!(step.deleted().len() <= run.deleted.len());
    }

    #[test]
    fn stable_database_triggers_do_nothing() {
        let mut db = figure1_instance();
        let program = parse_program("delta Grant(g, n) :- Grant(g, n), n = 'NOPE'.").unwrap();
        let ev = Evaluator::new(&mut db, program).unwrap();
        let trigs = triggers_from_program(ev.program());
        let run = run_triggers(&db, &ev, &trigs, FiringOrder::Alphabetical);
        assert!(run.deleted.is_empty());
        assert_eq!(run.activations, 0);
        assert!(run.stable);
    }

    #[test]
    fn default_trigger_names_are_stable() {
        let p = figure2_program();
        let trigs = triggers_from_program(&p);
        assert_eq!(trigs[0].name, "t0_grant");
        assert_eq!(trigs[4].name, "t4_cite");
    }
}

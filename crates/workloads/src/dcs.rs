//! The four denial constraints of the HoloClean comparison (Section 6),
//! in both forms the paper uses them:
//!
//! * as [`cellrepair`] constraints over `Author(aid, name, oid,
//!   organization)` (cell repair), and
//! * as delta rules (tuple deletion under our four semantics).

use cellrepair::{DenialConstraint, Table};
use datalog::{parse_program, Program};
use storage::{AttrType, Instance, Schema};

/// DC1–DC4 for the cell-repair system: `aid → oid`, `aid → name`,
/// `aid → organization`, `oid → organization`.
pub fn paper_dcs() -> Vec<DenialConstraint> {
    vec![
        DenialConstraint::key_determines("DC1", 0, 2),
        DenialConstraint::key_determines("DC2", 0, 1),
        DenialConstraint::key_determines("DC3", 0, 3),
        DenialConstraint::key_determines("DC4", 2, 3),
    ]
}

/// The same DCs as delta rules (Section 6 prints exactly these):
///
/// ```text
/// ΔA(a1,n1,o1,on1) :- A(a1,n1,o1,on1), A(a2,n2,o2,on2), a1 = a2, o1 ≠ o2
/// …
/// ```
pub fn dc_delta_program() -> Program {
    parse_program(
        "delta Author(a1, n1, o1, on1) :- Author(a1, n1, o1, on1), Author(a2, n2, o2, on2), a1 = a2, o1 != o2.
         delta Author(a1, n1, o1, on1) :- Author(a1, n1, o1, on1), Author(a2, n2, o2, on2), a1 = a2, n1 != n2.
         delta Author(a1, n1, o1, on1) :- Author(a1, n1, o1, on1), Author(a2, n2, o2, on2), a1 = a2, on1 != on2.
         delta Author(a1, n1, o1, on1) :- Author(a1, n1, o1, on1), Author(a2, n2, o2, on2), o1 = o2, on1 != on2.",
    )
    .expect("DC program parses")
}

/// Load a (possibly dirty) author [`Table`] into a one-relation [`Instance`]
/// so the deletion semantics can run on the same data as the cell-repair
/// system.
///
/// Duplicate rows collapse (relations are sets); the returned instance may
/// therefore have slightly fewer tuples than the table has rows.
pub fn author_instance_from_table(table: &Table) -> Instance {
    let mut s = Schema::new();
    s.relation(
        "Author",
        &[
            ("aid", AttrType::Int),
            ("name", AttrType::Str),
            ("oid", AttrType::Int),
            ("organization", AttrType::Str),
        ],
    );
    let mut db = Instance::new(s);
    for row in &table.rows {
        db.insert_values("Author", row.to_vec()).expect("schema ok");
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{author_table, inject_errors};
    use repair_core::{RepairSession, Semantics};

    #[test]
    fn dc_program_validates_against_author_schema() {
        let table = author_table(120, 3);
        let db = author_instance_from_table(&table);
        RepairSession::new(db, dc_delta_program()).unwrap();
    }

    #[test]
    fn clean_table_is_stable_dirty_table_is_not() {
        let mut table = author_table(200, 3);
        let db = author_instance_from_table(&table);
        let r = RepairSession::new(db, dc_delta_program()).unwrap();
        assert!(r.is_stable());

        inject_errors(&mut table, 10, 5);
        let dirty = author_instance_from_table(&table);
        let r2 = RepairSession::new(dirty, dc_delta_program()).unwrap();
        assert!(!r2.is_stable());
    }

    #[test]
    fn independent_semantics_deletes_about_one_tuple_per_error() {
        // Table 4's headline: Algorithm 1 deletes as many tuples as there
        // are errors (each error sits in one tuple; deleting that tuple
        // resolves all its violations).
        let mut table = author_table(200, 3);
        let n_errors = 8;
        inject_errors(&mut table, n_errors, 5);
        let db = author_instance_from_table(&table);
        let r = RepairSession::new(db, dc_delta_program()).unwrap();
        let ind = r.run(Semantics::Independent);
        assert!(r.verify_stabilizing(ind.deleted()));
        // Duplicate rows can collapse or an error can hit a pair, so allow
        // slack — but it must be close to n_errors, not to the table size.
        assert!(
            ind.size() <= n_errors + 2,
            "independent over-deleted: {} for {} errors",
            ind.size(),
            n_errors
        );
    }

    #[test]
    fn end_semantics_over_deletes_on_dcs() {
        // End deletes every tuple in any violating pair — strictly more
        // than independent.
        let mut table = author_table(200, 3);
        inject_errors(&mut table, 8, 5);
        let db = author_instance_from_table(&table);
        let r = RepairSession::new(db, dc_delta_program()).unwrap();
        let ind = r.run(Semantics::Independent);
        let end = r.run(Semantics::End);
        assert!(end.size() > ind.size());
    }
}

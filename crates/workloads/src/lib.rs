//! # workloads — the paper's experimental programs
//!
//! Transcriptions of **Table 1** (20 MAS programs), **Table 2** (6 TPC-H
//! programs) and the four denial constraints of the HoloClean comparison,
//! with constants chosen deterministically from the generated data (the
//! paper's `C`, `C1`, … constants were chosen from the real MAS/TPC-H
//! fragments).
//!
//! Paper typos normalized here (documented in DESIGN.md):
//! * program 4 rule (1): head arity fixed to `ΔA(aid, n, oid)`;
//! * T-5 rule (3): head witness fixed to the `C` atom;
//! * programs 16–20 grow one rule at a time (16 = rule 1 … 20 = rules 1–5).
//!
//! Our `Publication` relation carries the paper's full schema
//! `(pid, title, year)`, so `P(pid, t)` atoms from Table 1 gain a year
//! variable.

pub mod dcs;
pub mod mas;
pub mod scale;
pub mod tpch;

pub use dcs::{author_instance_from_table, dc_delta_program, paper_dcs};
pub use mas::mas_programs;
pub use repair_core::testkit::{figure1_instance, figure2_program};
pub use scale::zipf_programs;
pub use tpch::tpch_programs;

use datalog::Program;

/// The paper's three program classes (Section 6, "Test programs").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProgramClass {
    /// Mimics integrity constraints (DCs): programs 1–4, 11–15.
    DcLike,
    /// Pure cascade deletion: programs 5, 7, 9, 10, 16–20, T-1–T-3.
    Cascade,
    /// A mix of both: programs 6–8, T-4–T-6.
    Mixed,
}

/// One experimental workload: a named delta program with its class.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Identifier, e.g. `mas-03` or `tpch-5`.
    pub name: String,
    /// The program, constants already substituted.
    pub program: Program,
    /// The paper's classification.
    pub class: ProgramClass,
}

impl Workload {
    pub(crate) fn new(name: &str, class: ProgramClass, src: &str) -> Workload {
        Workload {
            name: name.to_owned(),
            program: datalog::parse_program(src)
                .unwrap_or_else(|e| panic!("workload {name} failed to parse: {e}\n{src}")),
            class,
        }
    }
}

//! Table 1: the twenty MAS programs.
//!
//! Relation abbreviations in the paper map to the generator's schema as
//! `O = Organization(oid, name)`, `A = Author(aid, name, oid)`,
//! `W = Writes(aid, pid)`, `P = Publication(pid, title, year)`,
//! `C = Cite(citing, cited)`.

use crate::{ProgramClass, Workload};
use datagen::MasData;

/// Constants extracted from the generated data, mirroring how the paper
/// picked its `C` constants from the real MAS fragment.
#[derive(Clone, Copy, Debug)]
struct Consts<'a> {
    /// A heavily shared author name (`C1` of programs 1, 5, 6, 9).
    name: &'a str,
    /// The busiest author (`C2` of program 1; `C` of 2, 3, 8).
    author: i64,
    /// The busiest organization (`C` of programs 4, 10, 16–20).
    org: i64,
    /// The most cited publication (`C` of program 7).
    pub_id: i64,
    /// Publication-id threshold (`C` of program 9 rule 4).
    pub_cut: i64,
}

/// Build all twenty workloads for a generated MAS database.
pub fn mas_programs(data: &MasData) -> Vec<Workload> {
    let pubs = data
        .db
        .rows(data.db.schema().rel_id("Publication").expect("schema"));
    let c = Consts {
        name: &data.common_name,
        author: data.busiest_author,
        org: data.busiest_org,
        pub_id: data.top_pub,
        pub_cut: (pubs / 2) as i64,
    };
    let mut v = Vec::with_capacity(20);

    // ---- DC-like programs 1–4 -------------------------------------------
    v.push(Workload::new(
        "mas-01",
        ProgramClass::DcLike,
        &format!(
            "delta Author(aid, n, oid) :- Author(aid, n, oid), n = '{}'.
             delta Writes(aid, pid) :- Writes(aid, pid), aid = {}.",
            c.name, c.author
        ),
    ));
    v.push(Workload::new(
        "mas-02",
        ProgramClass::DcLike,
        &format!(
            "delta Writes(aid, pid) :- Writes(aid, pid), Author(aid, n, oid), aid = {}.",
            c.author
        ),
    ));
    v.push(Workload::new(
        "mas-03",
        ProgramClass::DcLike,
        &format!(
            "delta Author(aid, n, oid) :- Writes(aid, pid), Author(aid, n, oid), aid = {a}.
             delta Writes(aid, pid) :- Writes(aid, pid), Author(aid, n, oid), aid = {a}.",
            a = c.author
        ),
    ));
    v.push(Workload::new(
        "mas-04",
        ProgramClass::DcLike,
        &format!(
            "delta Author(aid, n, oid) :- Organization(oid, n2), Author(aid, n, oid), oid = {o}.
             delta Organization(oid, n2) :- Organization(oid, n2), Author(aid, n, oid), oid = {o}.",
            o = c.org
        ),
    ));

    // ---- cascade programs 5–10 ------------------------------------------
    v.push(Workload::new(
        "mas-05",
        ProgramClass::Cascade,
        &format!(
            "delta Author(aid, n, oid) :- Author(aid, n, oid), n = '{}'.
             delta Writes(aid, pid) :- Writes(aid, pid), delta Author(aid, n, oid).",
            c.name
        ),
    ));
    v.push(Workload::new(
        "mas-06",
        ProgramClass::Mixed,
        &format!(
            "delta Author(aid, n, oid) :- Author(aid, n, oid), n = '{}'.
             delta Writes(aid, pid) :- Writes(aid, pid), delta Author(aid, n, oid).
             delta Publication(pid, t, y) :- Publication(pid, t, y), delta Writes(aid, pid), Author(aid, n, oid).",
            c.name
        ),
    ));
    v.push(Workload::new(
        "mas-07",
        ProgramClass::Cascade,
        &format!(
            "delta Publication(pid, t, y) :- Publication(pid, t, y), pid = {}.
             delta Cite(pid, cited) :- Cite(pid, cited), delta Publication(pid, t, y).
             delta Cite(citing, pid) :- Cite(citing, pid), delta Publication(pid, t, y).",
            c.pub_id
        ),
    ));
    v.push(Workload::new(
        "mas-08",
        ProgramClass::Mixed,
        &format!(
            "delta Author(aid, n, oid) :- Writes(aid, pid), Author(aid, n, oid), aid = {a}.
             delta Writes(aid, pid) :- Writes(aid, pid), Author(aid, n, oid), aid = {a}.
             delta Publication(pid, t, y) :- Publication(pid, t, y), delta Writes(aid, pid), Author(aid, n, oid).
             delta Publication(pid, t, y) :- Publication(pid, t, y), Writes(aid, pid), delta Author(aid, n, oid).",
            a = c.author
        ),
    ));
    v.push(Workload::new(
        "mas-09",
        ProgramClass::Cascade,
        &format!(
            "delta Author(aid, n, oid) :- Author(aid, n, oid), n = '{}'.
             delta Writes(aid, pid) :- Writes(aid, pid), delta Author(aid, n, oid).
             delta Publication(pid, t, y) :- Publication(pid, t, y), delta Writes(aid, pid).
             delta Cite(pid, cited) :- Cite(pid, cited), delta Publication(pid, t, y), pid < {}.",
            c.name, c.pub_cut
        ),
    ));
    v.push(Workload::new(
        "mas-10",
        ProgramClass::Cascade,
        &format!(
            "delta Organization(oid, n2) :- Organization(oid, n2), oid = {}.
             delta Author(aid, n, oid) :- Author(aid, n, oid), delta Organization(oid, n2).
             delta Writes(aid, pid) :- Writes(aid, pid), delta Author(aid, n, oid).
             delta Publication(pid, t, y) :- Publication(pid, t, y), delta Writes(aid, pid).",
            c.org
        ),
    ));

    // ---- single-rule join chain 11–15 (DC-like) --------------------------
    let chain = [
        "delta Cite(pid, c2) :- Cite(pid, c2).",
        "delta Cite(pid, c2) :- Cite(pid, c2), Publication(pid, t, y).",
        "delta Cite(pid, c2) :- Cite(pid, c2), Publication(pid, t, y), Writes(aid, pid).",
        "delta Cite(pid, c2) :- Cite(pid, c2), Publication(pid, t, y), Writes(aid, pid), Author(aid, n, oid).",
        "delta Cite(pid, c2) :- Cite(pid, c2), Publication(pid, t, y), Writes(aid, pid), Author(aid, n, oid), Organization(oid, n2).",
    ];
    for (i, src) in chain.iter().enumerate() {
        v.push(Workload::new(
            &format!("mas-{:02}", 11 + i),
            ProgramClass::DcLike,
            src,
        ));
    }

    // ---- growing cascade 16–20 -------------------------------------------
    let cascade_rules = [
        format!(
            "delta Organization(oid, n2) :- Organization(oid, n2), oid = {}.",
            c.org
        ),
        "delta Author(aid, n, oid) :- Author(aid, n, oid), delta Organization(oid, n2).".to_owned(),
        "delta Writes(aid, pid) :- Writes(aid, pid), delta Author(aid, n, oid).".to_owned(),
        "delta Publication(pid, t, y) :- Publication(pid, t, y), delta Writes(aid, pid)."
            .to_owned(),
        "delta Cite(citing, pid) :- Cite(citing, pid), delta Publication(pid, t, y).".to_owned(),
    ];
    for n in 1..=5usize {
        let src = cascade_rules[..n].join("\n");
        v.push(Workload::new(
            &format!("mas-{:02}", 15 + n),
            ProgramClass::Cascade,
            &src,
        ));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{mas, MasConfig};
    use repair_core::RepairSession;

    fn data() -> MasData {
        mas::generate(&MasConfig {
            organizations: 25,
            authors: 250,
            publications: 300,
            writes: 520,
            cites: 200,
            seed: 7,
        })
    }

    #[test]
    fn all_twenty_programs_build_and_validate() {
        let d = data();
        let workloads = mas_programs(&d);
        assert_eq!(workloads.len(), 20);
        for w in &workloads {
            RepairSession::new(d.db.clone(), w.program.clone())
                .unwrap_or_else(|e| panic!("{} invalid: {e}", w.name));
        }
    }

    #[test]
    fn rule_counts_match_table_1() {
        let d = data();
        let w = mas_programs(&d);
        let counts: Vec<usize> = w.iter().map(|w| w.program.len()).collect();
        assert_eq!(
            counts,
            vec![2, 1, 2, 2, 2, 3, 3, 4, 4, 4, 1, 1, 1, 1, 1, 1, 2, 3, 4, 5]
        );
    }

    #[test]
    fn program_names_are_ordered() {
        let d = data();
        let w = mas_programs(&d);
        assert_eq!(w[0].name, "mas-01");
        assert_eq!(w[10].name, "mas-11");
        assert_eq!(w[19].name, "mas-20");
    }
}

//! Programs over the zipf scaling universe (`datagen::scale`).
//!
//! Three shapes, all chosen so one rule owns almost all the work — the
//! regime where per-rule fan-out cannot help and intra-rule morsel
//! parallelism must:
//!
//! * `zipf-cascade` — a three-rule chain seeded by the `'bad'` hubs; rule 2
//!   (the `Mid ⋈ Link ⋈ ΔHub` join over Zipf-skewed links) dominates every
//!   semi-naive round;
//! * `zipf-join` — a single wide rule (`Leaf ⋈ Link ⋈ Hub` filtered to
//!   `'bad'`), the purest single-heavy-rule workload: with one rule there
//!   is nothing to fan out per rule at all;
//! * `zipf-pessimal` — the same join written in the *worst* textual order:
//!   the body leads with the huge unselective `Leaf` and buries the
//!   `k = 'bad'`-filtered `Hub` last, so a planner that follows source
//!   order drives the join from 60K leaves while a statistics-driven one
//!   drives it from the ~2% of hubs that are `'bad'`. The adversarial
//!   fixture for the cost-based planner's bench gate.

use crate::{ProgramClass, Workload};
use datagen::ScaleData;

/// Build the zipf workloads for a generated scaling database. The programs
/// carry no data-derived constants (the `'bad'` slice is deterministic), so
/// `data` is taken for signature symmetry with the MAS/TPC-H builders and
/// to keep call sites honest about which database the programs target.
pub fn zipf_programs(_data: &ScaleData) -> Vec<Workload> {
    vec![
        Workload::new(
            "zipf-cascade",
            ProgramClass::Cascade,
            "delta Hub(h, k) :- Hub(h, k), k = 'bad'.
             delta Mid(m, w) :- Mid(m, w), Link(h, m), delta Hub(h, k).
             delta Leaf(m, l) :- Leaf(m, l), delta Mid(m, w).",
        ),
        Workload::new(
            "zipf-join",
            ProgramClass::Cascade,
            "delta Leaf(m, l) :- Leaf(m, l), Link(h, m), Hub(h, k), k = 'bad'.",
        ),
        Workload::new(
            "zipf-pessimal",
            ProgramClass::Cascade,
            "delta Hub(h, k) :- Leaf(m, l), Mid(m, w), Link(h, m), Hub(h, k), k = 'bad'.",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::scale::{generate, ScaleConfig};
    use repair_core::{RepairSession, Semantics};

    #[test]
    fn zipf_workloads_run_under_all_semantics() {
        let data = generate(&ScaleConfig {
            hubs: 90,
            mids: 200,
            links: 400,
            leaves: 600,
            ..ScaleConfig::default()
        });
        for w in zipf_programs(&data) {
            let session = RepairSession::new(data.db.clone(), w.program.clone())
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            for sem in Semantics::ALL {
                let out = session.run(sem);
                assert!(
                    session.verify_stabilizing(out.deleted()),
                    "{} under {sem} must stabilize",
                    w.name
                );
                assert!(out.size() > 0, "{} under {sem} deletes something", w.name);
            }
        }
    }
}

//! Table 2: the six TPC-H programs.
//!
//! Abbreviations map to the TPC-H-lite schema as `PS = PartSupp(sk, pk,
//! qty, cost)`, `LI = Lineitem(ok, sk, pk, qty, price)`, `S = Supplier(sk,
//! nk, name, bal)`, `C = Customer(ck, nk, name, bal)`, `O = Orders(ok, ck,
//! status, total)`, `N = Nation(nk, rk, name)`, `P = Part(pk, name,
//! price)`. The paper's `X`, `Y`, `Z` attribute vectors become explicit
//! variables.

use crate::{ProgramClass, Workload};
use datagen::TpchData;

/// Build the six workloads for a generated TPC-H database. Constants
/// follow the paper's pattern of selecting a slice of suppliers / orders /
/// customers and one nation.
pub fn tpch_programs(data: &TpchData) -> Vec<Workload> {
    let s = data.db.schema();
    let suppliers = data.db.rows(s.rel_id("Supplier").expect("schema")) as i64;
    let orders = data.db.rows(s.rel_id("Orders").expect("schema")) as i64;
    // ~5% of suppliers, ~1% of orders, the UNITED STATES nation key.
    let sk_cut = (suppliers / 20).max(1);
    let ok_cut = (orders / 100).max(1);
    let nation = 24i64;

    vec![
        Workload::new(
            "tpch-1",
            ProgramClass::Cascade,
            &format!(
                "delta PartSupp(sk, pk, q, c) :- PartSupp(sk, pk, q, c), Supplier(sk, nk, n, b), sk < {sk_cut}.
                 delta Lineitem(ok, sk, pk, q, p) :- Lineitem(ok, sk, pk, q, p), delta PartSupp(sk, pk2, q2, c2)."
            ),
        ),
        Workload::new(
            "tpch-2",
            ProgramClass::Cascade,
            &format!(
                "delta PartSupp(sk, pk, q, c) :- PartSupp(sk, pk, q, c), sk < {sk_cut}.
                 delta Lineitem(ok, sk, pk, q, p) :- Lineitem(ok, sk, pk, q, p), delta PartSupp(sk, pk2, q2, c2)."
            ),
        ),
        Workload::new(
            "tpch-3",
            ProgramClass::Cascade,
            &format!(
                "delta PartSupp(sk, pk, q, c) :- PartSupp(sk, pk, q, c), Supplier(sk, nk, n, b), Part(pk, pn, pp), sk < {sk_cut}.
                 delta Lineitem(ok, sk, pk, q, p) :- Lineitem(ok, sk, pk, q, p), delta PartSupp(sk, pk2, q2, c2)."
            ),
        ),
        Workload::new(
            "tpch-4",
            ProgramClass::Mixed,
            &format!(
                "delta Lineitem(ok, sk, pk, q, p) :- Lineitem(ok, sk, pk, q, p), ok < {ok_cut}.
                 delta Supplier(sk, nk, n, b) :- Supplier(sk, nk, n, b), delta Lineitem(ok, sk, pk, q, p).
                 delta Customer(ck, nk, n, b) :- Customer(ck, nk, n, b), Orders(ok, ck, st, tot), delta Lineitem(ok, sk, pk, q, p)."
            ),
        ),
        Workload::new(
            "tpch-5",
            ProgramClass::Mixed,
            &format!(
                // Rule (3)'s head witness fixed to the Customer atom (paper
                // typo, see DESIGN.md).
                "delta Nation(nk, rk, n) :- Nation(nk, rk, n), nk = {nation}.
                 delta Supplier(sk, nk, n, b) :- Supplier(sk, nk, n, b), delta Nation(nk, rk, n2), Customer(ck, nk, cn, cb).
                 delta Customer(ck, nk, cn, cb) :- Supplier(sk, nk, n, b), delta Nation(nk, rk, n2), Customer(ck, nk, cn, cb)."
            ),
        ),
        Workload::new(
            "tpch-6",
            ProgramClass::Mixed,
            &format!(
                "delta Orders(ok, ck, st, t) :- Orders(ok, ck, st, t), Customer(ck, nk, n, b), ck < {sk_cut}.
                 delta PartSupp(sk, pk, q, c) :- PartSupp(sk, pk, q, c), Supplier(sk, nk, n, b), sk < {sk_cut}.
                 delta Lineitem(ok, sk, pk, q, p) :- Lineitem(ok, sk, pk, q, p), delta Orders(ok, ck, st, t).
                 delta Lineitem(ok, sk, pk, q, p) :- Lineitem(ok, sk, pk, q, p), delta PartSupp(sk, pk2, q2, c2)."
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{tpch, TpchConfig};
    use repair_core::RepairSession;

    fn data() -> TpchData {
        tpch::generate(&TpchConfig {
            suppliers: 40,
            customers: 80,
            parts: 100,
            suppliers_per_part: 2,
            orders: 150,
            lineitems_per_order: 3,
            seed: 11,
        })
    }

    #[test]
    fn all_six_programs_build_and_validate() {
        let d = data();
        let workloads = tpch_programs(&d);
        assert_eq!(workloads.len(), 6);
        for w in &workloads {
            RepairSession::new(d.db.clone(), w.program.clone())
                .unwrap_or_else(|e| panic!("{} invalid: {e}", w.name));
        }
    }

    #[test]
    fn rule_counts_match_table_2() {
        let d = data();
        let counts: Vec<usize> = tpch_programs(&d).iter().map(|w| w.program.len()).collect();
        assert_eq!(counts, vec![2, 2, 2, 3, 3, 4]);
    }
}

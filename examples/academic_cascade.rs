//! Cascade deletion over a generated academic database (the scenario that
//! motivates the paper's programs 16–20).
//!
//! An organization is retracted; its authors, their authorship records,
//! their publications and the citations of those publications must follow.
//! This is the workload class where the paper recommends *end* or *stage*
//! semantics: all four semantics return the same stabilizing set, and the
//! PTIME algorithms are the fastest way to get it.
//!
//! Run with: `cargo run --release --example academic_cascade`

use delta_repairs::datagen::{mas, MasConfig};
use delta_repairs::{parse_program, RepairSession, Semantics};
use std::time::Instant;

fn main() {
    // ~6K tuples by default; raise the scale for the paper's 124K.
    let scale: f64 = std::env::var("MAS_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05);
    let data = mas::generate(&MasConfig::scaled(scale));
    println!(
        "MAS fragment at scale {scale}: {} tuples; retracting organization {}",
        data.db.total_rows(),
        data.busiest_org
    );

    // Program 20 of Table 1: the five-rule cascade
    //   Organization -> Author -> Writes -> Publication -> Cite
    // seeded at the busiest organization (the paper's constant C).
    let program = parse_program(&format!(
        "delta Organization(oid, n2) :- Organization(oid, n2), oid = {org}.
         delta Author(aid, n, oid) :- Author(aid, n, oid), delta Organization(oid, n2).
         delta Writes(aid, pid) :- Writes(aid, pid), delta Author(aid, n, oid).
         delta Publication(pid, t, y) :- Publication(pid, t, y), delta Writes(aid, pid).
         delta Cite(citing, pid) :- Cite(citing, pid), delta Publication(pid, t, y).",
        org = data.busiest_org
    ))
    .expect("cascade program parses");

    let session = RepairSession::new(data.db.clone(), program).expect("well-formed");

    let mut sizes = Vec::new();
    for sem in Semantics::ALL {
        let t0 = Instant::now();
        let result = session.run(sem);
        let wall = t0.elapsed();
        println!(
            "{:<12} deleted {:>6} tuples in {:>10.2?}  (eval {:.0}%, process {:.0}%, solve {:.0}%)",
            sem.to_string(),
            result.size(),
            wall,
            result.breakdown().fractions().0 * 100.0,
            result.breakdown().fractions().1 * 100.0,
            result.breakdown().fractions().2 * 100.0,
        );
        assert!(session.verify_stabilizing(result.deleted()));
        sizes.push(result.size());
    }

    // Pure cascades leave no choice: every derived tuple must go, so all
    // four semantics agree (Section 6, "programs that perform cascade
    // deletion ... the result for all semantics is the same").
    assert!(
        sizes.windows(2).all(|w| w[0] == w[1]),
        "cascade programs must produce identical results under all semantics"
    );
    println!(
        "\nAll four semantics agree on the cascade ({} tuples) — use End or Stage.",
        sizes[0]
    );

    // Show the per-relation composition of the repair.
    let db = session.db();
    let result = session.run(Semantics::End);
    let mut per_rel: std::collections::BTreeMap<&str, usize> = Default::default();
    for &t in result.deleted() {
        *per_rel
            .entry(db.schema().rel(t.rel).name.as_str())
            .or_default() += 1;
    }
    println!("Cascade composition:");
    for (rel, n) in per_rel {
        println!("  {rel:<14} {n:>6}");
    }
}

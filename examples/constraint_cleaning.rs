//! Data cleaning with denial constraints: minimum tuple-deletion repair
//! (independent semantics) versus probabilistic cell repair (the paper's
//! HoloClean comparison, Section 6 / Tables 4–5).
//!
//! We build the 4-attribute `Author(aid, name, oid, organization)` table,
//! inject duplicate-key errors, and repair it three ways:
//!
//! 1. **Independent semantics** — the paper's DC-faithful minimum repair:
//!    deletes exactly one tuple per violation cluster, always stabilizes.
//! 2. **End semantics** — over-deletes (every violating tuple goes), but
//!    also always stabilizes.
//! 3. **Cell repair** — HoloClean-style: fixes attribute values instead of
//!    deleting rows, but its relaxed soft constraints can leave residual
//!    violations (the paper's Table 5).
//!
//! Run with: `cargo run --release --example constraint_cleaning`

use delta_repairs::cellrepair::{count_violating_tuples, repair, CellRepairConfig};
use delta_repairs::datagen::{author_table, inject_errors};
use delta_repairs::workloads::{author_instance_from_table, dc_delta_program, paper_dcs};
use delta_repairs::{RepairSession, Semantics};

fn main() {
    let rows: usize = std::env::var("ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000);
    let errors: usize = std::env::var("ERRORS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);

    // A clean Author table, then `errors` injected violations (duplicated
    // aids with perturbed attributes — exactly what DC1–DC4 forbid).
    let mut table = author_table(rows, 7);
    let injected = inject_errors(&mut table, errors, 11);
    println!(
        "{} rows, {} injected errors",
        table.rows.len(),
        injected.len()
    );

    let dcs = paper_dcs();
    let before: usize = dcs
        .iter()
        .map(|dc| count_violating_tuples(&table, dc))
        .sum();
    println!("violating tuples before repair (summed over DC1–DC4): {before}\n");

    // --- Tuple-deletion repairs under the four semantics ------------------
    let db = author_instance_from_table(&table);
    let session = RepairSession::new(db, dc_delta_program()).expect("DC program");
    for sem in [
        Semantics::Independent,
        Semantics::Step,
        Semantics::Stage,
        Semantics::End,
    ] {
        let result = session.run(sem);
        let over = result.size() as i64 - injected.len() as i64;
        // Fewer deletions than injected errors is possible: duplicated rows
        // that collide under set semantics or clustered violations can be
        // resolved by a single deletion.
        println!(
            "{:<12} deleted {:>5} tuples ({:+} vs the {} injected errors)  stable: {}",
            sem.to_string(),
            result.size(),
            over,
            injected.len(),
            session.verify_stabilizing(result.deleted()),
        );
    }

    // --- HoloClean-style cell repair ---------------------------------------
    let mut repaired = table.clone();
    let report = repair(&mut repaired, &dcs, &CellRepairConfig::default());
    let after: usize = dcs
        .iter()
        .map(|dc| count_violating_tuples(&repaired, dc))
        .sum();
    let rows_touched: std::collections::HashSet<usize> =
        report.repairs.iter().map(|r| r.row).collect();
    println!(
        "\ncell-repair    repaired {:>5} cells ({} rows touched, {} skipped low-confidence); \
         residual violating tuples: {after}",
        report.repairs.len(),
        rows_touched.len(),
        report.skipped_low_confidence
    );
    if after > 0 {
        println!(
            "               -> the probabilistic repairer under-repairs (Table 5's finding); \
             the delta-rule semantics never leave violations (Prop. 3.18)."
        );
    }
}

//! Bring your own schema: referential integrity for an order-management
//! database, written as delta rules from scratch.
//!
//! The scenario mirrors the paper's TPC-H programs (Table 2): a supplier is
//! delisted, and three different repair policies disagree on what should
//! happen to its part listings, open order lines and affected customers.
//! This example shows the full user workflow:
//!
//!   schema → data (TSV) → program text → validate → repair → inspect
//!
//! Run with: `cargo run --example custom_rules`

use delta_repairs::storage::tsv;
use delta_repairs::{AttrType, Instance, RepairSession, Schema, Semantics, Value};

fn main() {
    // 1. Declare the schema.
    let mut schema = Schema::new();
    schema.relation(
        "Supplier",
        &[("sk", AttrType::Int), ("name", AttrType::Str)],
    );
    schema.relation("PartSupp", &[("sk", AttrType::Int), ("pk", AttrType::Int)]);
    schema.relation(
        "LineItem",
        &[
            ("ok", AttrType::Int),
            ("sk", AttrType::Int),
            ("pk", AttrType::Int),
        ],
    );
    schema.relation("Orders", &[("ok", AttrType::Int), ("ck", AttrType::Int)]);
    schema.relation(
        "Customer",
        &[("ck", AttrType::Int), ("name", AttrType::Str)],
    );
    let mut db = Instance::new(schema);

    // 2. Load data — here from inline TSV, the same format `datagen` dumps.
    tsv::from_tsv(
        &mut db,
        "# relation Supplier\n\
         1\tAcme\n\
         2\tShady Corp\n\
         # relation PartSupp\n\
         2\t100\n\
         2\t101\n\
         1\t100\n\
         # relation LineItem\n\
         10\t2\t100\n\
         11\t2\t101\n\
         12\t1\t100\n\
         # relation Orders\n\
         10\t500\n\
         11\t501\n\
         12\t500\n\
         # relation Customer\n\
         500\tBart\n\
         501\tLisa\n",
    )
    .expect("fixture loads");

    // 3. The repair policy, in delta-rule syntax:
    //    delist Shady Corp; cascade to its part listings; any order line
    //    whose part listing vanished is dropped; a customer whose every
    //    order line is gone *may* be dropped too (a DC-like choice).
    let program_text = "
        # seed: delist the bad supplier
        delta Supplier(sk, n) :- Supplier(sk, n), n = 'Shady Corp'.
        # cascade: its catalogue entries go
        delta PartSupp(sk, pk) :- PartSupp(sk, pk), delta Supplier(sk, n).
        # cascade: open order lines referencing a dead listing go
        delta LineItem(ok, sk, pk) :- LineItem(ok, sk, pk), delta PartSupp(sk, pk).
        # choice: either the order header or the customer record resolves
        # an order whose line vanished (two rules, same body)
        delta Orders(ok, ck) :- Orders(ok, ck), Customer(ck, cn), delta LineItem(ok, sk, pk).
        delta Customer(ck, cn) :- Orders(ok, ck), Customer(ck, cn), delta LineItem(ok, sk, pk).
    ";

    // 4. Validation happens inside RepairSession::new — malformed rules
    //    (unsafe variables, missing head atom in body, arity errors) are
    //    rejected with a single RepairError wrapping the line-precise
    //    cause. The session owns the database from here.
    let program = delta_repairs::parse_program(program_text).expect("parses");
    let mut session = RepairSession::new(db, program).expect("valid delta program");

    // 5. Compare policies.
    println!("{:<12} {:>5}  deleted tuples", "semantics", "|S|");
    for sem in Semantics::ALL {
        let r = session.run(sem);
        let names: Vec<String> = r
            .deleted()
            .iter()
            .map(|&t| session.db().display_tuple(t))
            .collect();
        println!(
            "{:<12} {:>5}  {}",
            sem.to_string(),
            r.size(),
            names.join(", ")
        );
    }

    // 6. Apply the policy you want: preview the diff, commit it through
    //    the session, and persist the surviving tuples.
    let total = session.db().total_rows();
    let chosen = session.run(Semantics::Step);
    assert!(session.verify_stabilizing(chosen.deleted()));
    print!("\n{}", chosen.preview(&session));
    chosen.apply(&mut session).expect("fresh outcome applies");
    println!(
        "\nkept {} of {} tuples after step-semantics repair:",
        session.db().total_rows(),
        total
    );
    print!("{}", tsv::to_tsv(session.db()));
    let _ = Value::Int(0); // silence the unused-import lint in doc builds
}

//! Incremental re-repair: the mutate → repair → apply loop of a long-lived
//! session.
//!
//! A `RepairSession` checkpoints the end-semantics fixpoint after each
//! computation. Mutations (`insert_batch` / `delete_batch` / `apply` /
//! `undo`) land in the storage journal, and the next repair replays only
//! the affected cone — DRed-style retraction for deletions, change-seeded
//! semi-naive rounds for insertions — instead of re-deriving everything.
//! The answers are bit-identical to full recomputes; this example proves it
//! on every step and prints which path served each request.
//!
//! Run with: `cargo run --example incremental_rerepair`

use delta_repairs::{testkit, RepairRequest, RepairSession, Semantics, Value};

fn show(label: &str, outcome: &delta_repairs::RepairOutcome) {
    println!(
        "{label:<28} |S| = {:<2} served {} in {:?}",
        outcome.size(),
        if outcome.served_incrementally() {
            "incrementally"
        } else {
            "by full recompute"
        },
        outcome.breakdown().total(),
    );
}

fn main() -> Result<(), delta_repairs::RepairError> {
    let mut session = RepairSession::new(testkit::figure1_instance(), testkit::figure2_program())?;

    // Cold start: the first end repair runs the full fixpoint and primes
    // the checkpoint.
    let first = session.run(Semantics::End);
    show("cold end repair", &first);
    assert!(!first.served_incrementally());

    // Ingest: a new ERC grant for Maggie widens the cascade. The journal
    // records the batch; the next repair advances over it.
    session.insert_batch("Grant", [[Value::Int(3), Value::str("ERC")]])?;
    session.insert_batch("AuthGrant", [[Value::Int(2), Value::Int(3)]])?;
    let widened = session.run(Semantics::End);
    show("after insert_batch", &widened);
    assert!(widened.served_incrementally());
    assert!(widened.size() > first.size());

    // The escape hatch forces the full path — same bits, full price.
    let full = session.repair(&RepairRequest::new(Semantics::End).incremental(false))?;
    show("forced full recompute", &full);
    assert_eq!(full.deleted(), widened.deleted(), "bit-identical");

    // Retract the ingest again: DRed over-delete/re-derive shrinks the
    // fixpoint back without touching the untouched cone.
    let g3 = session
        .db()
        .all_tuple_ids()
        .find(|&t| session.db().display_tuple(t) == "Grant(3, ERC)")
        .expect("just inserted");
    let ag = session
        .db()
        .all_tuple_ids()
        .find(|&t| session.db().display_tuple(t) == "AuthGrant(2, 3)")
        .expect("just inserted");
    session.delete_batch(&[g3, ag])?;
    let narrowed = session.run(Semantics::End);
    show("after delete_batch", &narrowed);
    assert!(narrowed.served_incrementally());
    assert_eq!(narrowed.deleted(), first.deleted(), "back to the start");

    // Commit the repair; the apply itself is journaled, so the follow-up
    // stability probe is an incremental no-op.
    narrowed.apply(&mut session)?;
    let stable = session.run(Semantics::End);
    show("after apply", &stable);
    assert_eq!(stable.size(), 0);
    assert!(session.is_stable());

    // Long-lived churn leaves tombstone bloat behind; compaction reclaims
    // it without touching ids, indexes, or the checkpoint.
    println!(
        "dead ratio {:.2} -> compacted {} relations",
        session.dead_ratio(),
        session.compact_if_bloated(),
    );
    let still_stable = session.run(Semantics::End);
    show("after compact", &still_stable);
    assert!(still_stable.served_incrementally());

    session.undo()?;
    println!("undo: back to {} live tuples", session.db().total_rows());
    assert_eq!(session.run(Semantics::End).deleted(), first.deleted());
    Ok(())
}

//! Quickstart: the paper's running example (Figures 1–5) end to end.
//!
//! Builds the six-table academic database of Figure 1, the five delta rules
//! of Figure 2, runs all four semantics and prints what each one deletes —
//! reproducing Example 1.3:
//!
//! ```text
//! End   = {g2, a2, a3, w1, w2, p1, p2, c}
//! Stage = {g2, a2, a3, w1, w2, p1, p2}
//! Step  = {g2, a2, a3, w1, w2}
//! Ind   = {g2, ag2, ag3}
//! ```
//!
//! Run with: `cargo run --example quickstart`

use delta_repairs::{testkit, Repairer, Semantics};

fn main() {
    // Figure 1: Grant, AuthGrant, Author, Cite, Writes, Pub.
    let mut db = testkit::figure1_instance();

    // Figure 2: rule (0) seeds the deletion of the ERC grant; rules (1)–(4)
    // cascade through grant winners, their papers and citations.
    let program = testkit::figure2_program();
    println!("The delta program (Figure 2):\n{program}");

    // Validate + plan once, run any number of semantics.
    let repairer = Repairer::new(&mut db, program).expect("program is well-formed");

    for sem in Semantics::ALL {
        let result = repairer.run(&db, sem);
        println!(
            "{:<12} |S| = {}  ->  {}",
            sem.to_string(),
            result.size(),
            testkit::names_of(&db, &result.deleted).join(", ")
        );
        // Proposition 3.18: every semantics yields a stabilizing set.
        assert!(
            repairer.verify_stabilizing(&db, &result.deleted),
            "{sem} must stabilize the database"
        );
    }

    // The containment/size relationships of Figure 3.
    let [ind, step, stage, end] = repairer.run_all(&db);
    assert!(ind.size() <= step.size());
    assert!(ind.size() <= stage.size());
    assert!(step.deleted.iter().all(|t| end.contains(*t)), "Step ⊆ End");
    assert!(
        stage.deleted.iter().all(|t| end.contains(*t)),
        "Stage ⊆ End"
    );
    println!("\nFigure 3 invariants hold: |Ind| ≤ |Step|,|Stage| and Step,Stage ⊆ End.");
}

//! Quickstart: the paper's running example (Figures 1–5) end to end.
//!
//! Builds the six-table academic database of Figure 1, the five delta rules
//! of Figure 2, runs all four semantics and prints what each one deletes —
//! reproducing Example 1.3:
//!
//! ```text
//! End   = {g2, a2, a3, w1, w2, p1, p2, c}
//! Stage = {g2, a2, a3, w1, w2, p1, p2}
//! Step  = {g2, a2, a3, w1, w2}
//! Ind   = {g2, ag2, ag3}
//! ```
//!
//! then commits the independent repair and rolls it back again.
//!
//! Run with: `cargo run --example quickstart`

use delta_repairs::{testkit, RepairRequest, RepairSession, Semantics};

fn main() -> Result<(), delta_repairs::RepairError> {
    // Figure 2: rule (0) seeds the deletion of the ERC grant; rules (1)–(4)
    // cascade through grant winners, their papers and citations.
    let program = testkit::figure2_program();
    println!("The delta program (Figure 2):\n{program}");

    // Validate + plan once; the session owns Figure 1's database from here.
    let mut session = RepairSession::new(testkit::figure1_instance(), program)?;

    for sem in Semantics::ALL {
        let result = session.run(sem);
        println!(
            "{:<12} |S| = {}  ->  {}",
            sem.to_string(),
            result.size(),
            testkit::names_of(session.db(), result.deleted()).join(", ")
        );
        // Proposition 3.18: every semantics yields a stabilizing set.
        assert!(
            session.verify_stabilizing(result.deleted()),
            "{sem} must stabilize the database"
        );
    }

    // The containment/size relationships of Figure 3.
    let [ind, step, stage, end] = session.run_all();
    assert!(ind.size() <= step.size());
    assert!(ind.size() <= stage.size());
    assert!(
        step.deleted().iter().all(|t| end.contains(*t)),
        "Step ⊆ End"
    );
    assert!(
        stage.deleted().iter().all(|t| end.contains(*t)),
        "Stage ⊆ End"
    );
    println!("\nFigure 3 invariants hold: |Ind| ≤ |Step|,|Stage| and Step,Stage ⊆ End.");

    // Budgets ride on the request builder; the outcome says whether the
    // answer is provably minimum and why.
    let exact =
        session.repair(&RepairRequest::new(Semantics::Independent).node_budget(u64::MAX))?;
    println!(
        "\nExact independent repair ({} tuples, proven optimal: {}, {:?}):",
        exact.size(),
        exact.proven_optimal(),
        exact.optimality().certificate
    );

    // Preview, commit, inspect, roll back.
    print!("{}", exact.preview(&session));
    exact.apply(&mut session)?;
    assert!(
        session.is_stable(),
        "committed repair stabilizes the database"
    );
    println!(
        "applied: {} tuples remain, database stable",
        session.db().total_rows()
    );
    session.undo()?;
    assert_eq!(session.db().total_rows(), 13);
    println!("undone: all 13 tuples restored");
    Ok(())
}

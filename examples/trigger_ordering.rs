//! Why trigger firing order matters — the paper's Section 6 comparison
//! ("Comparison with Triggers") on program 4 of Table 1.
//!
//! Program 4 has two rules with the *same body*: when an organization with
//! oid = C exists alongside its authors, delete either the Author tuple
//! (rule 1) or the Organization tuple (rule 2). As SQL triggers:
//!
//! * PostgreSQL fires same-event triggers **alphabetically by name**, so a
//!   trigger named `a_*` beats `b_*` regardless of intent — with the Author
//!   trigger first it deletes *every* author of the organization.
//! * MySQL fires them in **creation order**, so the answer depends on the
//!   order the DBA happened to write them.
//!
//! Step semantics gives the order-independent minimum instead: one single
//! Organization tuple.
//!
//! Run with: `cargo run --release --example trigger_ordering`

use delta_repairs::datagen::{mas, MasConfig};
use delta_repairs::triggers::{run_triggers, FiringOrder, Trigger};
use delta_repairs::{parse_program, RepairSession, Semantics};

fn main() {
    let data = mas::generate(&MasConfig::scaled(0.05));
    let org = data.busiest_org;

    // Table 1, program 4 (head arity normalized, see DESIGN.md):
    //   (1) ΔA(aid,n,oid) :- O(oid,n2), A(aid,n,oid), oid = C
    //   (2) ΔO(oid,n2)    :- O(oid,n2), A(aid,n,oid), oid = C
    let program = parse_program(&format!(
        "delta Author(aid, n, oid) :- Organization(oid, n2), Author(aid, n, oid), oid = {org}.
         delta Organization(oid, n2) :- Organization(oid, n2), Author(aid, n, oid), oid = {org}."
    ))
    .expect("program 4 parses");

    let session = RepairSession::new(data.db.clone(), program.clone()).expect("well-formed");
    let (db, ev) = (session.db(), session.evaluator());

    // PostgreSQL: the DBA named the author trigger so it sorts first.
    let pg_triggers = vec![
        Trigger {
            name: "a_delete_authors".into(),
            rule: 0,
        },
        Trigger {
            name: "b_delete_org".into(),
            rule: 1,
        },
    ];
    let pg = run_triggers(db, ev, &pg_triggers, FiringOrder::Alphabetical);
    println!(
        "PostgreSQL (alphabetical): {} deletions, stable: {}",
        pg.deleted.len(),
        pg.stable
    );

    // MySQL, authors-trigger created first…
    let my1 = run_triggers(db, ev, &pg_triggers, FiringOrder::CreationOrder);
    // …and the same schema with the org-trigger created first.
    let my_triggers_rev = vec![
        Trigger {
            name: "a_delete_authors".into(),
            rule: 1,
        },
        Trigger {
            name: "b_delete_org".into(),
            rule: 0,
        },
    ];
    let my2 = run_triggers(db, ev, &my_triggers_rev, FiringOrder::CreationOrder);
    println!(
        "MySQL (creation order):    {} deletions if Author trigger first, {} if Organization first",
        my1.deleted.len(),
        my2.deleted.len()
    );

    // The four semantics are order-independent by definition.
    let step = session.run(Semantics::Step);
    let ind = session.run(Semantics::Independent);
    let end = session.run(Semantics::End);
    println!(
        "step semantics:            {} deletion(s) — the minimum firing sequence",
        step.size()
    );
    println!("independent semantics:     {} deletion(s)", ind.size());
    println!(
        "end semantics:             {} deletions (every derivable delta)",
        end.size()
    );

    assert!(step.size() <= pg.deleted.len());
    assert!(step.size() <= my1.deleted.len().max(my2.deleted.len()));
    println!(
        "\nTrigger results depend on names/creation order; step semantics deletes \
         {}x fewer tuples than the unlucky trigger ordering.",
        pg.deleted
            .len()
            .max(my1.deleted.len())
            .max(my2.deleted.len())
            / step.size().max(1)
    );
}

//! Why was this tuple deleted? — derivation-tree explanations and the
//! Figure-5 provenance graph.
//!
//! Repair systems that delete tuples owe their users an explanation. The
//! end-semantics evaluation already records every assignment (that stream
//! *is* the provenance consumed by Algorithm 2); this example turns it
//! into human-readable derivation trees and a Graphviz rendering of the
//! paper's Figure 5.
//!
//! Run with: `cargo run --example why_provenance`

use delta_repairs::{testkit, Repairer, Semantics};

fn main() {
    let mut db = testkit::figure1_instance();
    let repairer = Repairer::new(&mut db, testkit::figure2_program()).expect("figure 2");

    // Every tuple deleted by end semantics has a derivation tree.
    let end = repairer.run(&db, Semantics::End);
    println!(
        "end semantics deletes {} tuples; explanations:\n",
        end.size()
    );
    for &t in &end.deleted {
        let tree = repairer
            .explain(&db, t)
            .expect("every deleted tuple has a derivation");
        print!("{}", tree.render(&db));
        println!(
            "  ({} derivation step(s), depth {})\n",
            tree.steps(),
            tree.depth()
        );
    }

    // Tuples that survive have no derivation.
    let survivor = testkit::tid_of(&db, "Author(2, Maggie)");
    assert!(repairer.explain(&db, survivor).is_none());
    println!("Author(2, Maggie) is never deleted — no derivation exists.\n");

    // The full provenance graph, ready for `dot -Tsvg`.
    println!("Figure 5 as Graphviz DOT:\n");
    print!("{}", repairer.provenance_dot(&db));
}

//! Why was this tuple deleted? — derivation-tree explanations and the
//! Figure-5 provenance graph.
//!
//! Repair systems that delete tuples owe their users an explanation. The
//! end-semantics evaluation already records every assignment (that stream
//! *is* the provenance consumed by Algorithm 2); this example turns it
//! into human-readable derivation trees and a Graphviz rendering of the
//! paper's Figure 5.
//!
//! Run with: `cargo run --example why_provenance`

use delta_repairs::{testkit, RepairRequest, RepairSession, Semantics};

fn main() {
    let session = RepairSession::new(testkit::figure1_instance(), testkit::figure2_program())
        .expect("figure 2");
    let db = session.db();

    // Capture the provenance stream once, alongside the repair itself.
    let end = session
        .repair(&RepairRequest::new(Semantics::End).capture_provenance(true))
        .expect("valid request");
    let prov = end.provenance().expect("capture requested");
    println!(
        "end semantics deletes {} tuples; explanations:\n",
        end.size()
    );
    for &t in end.deleted() {
        let tree = prov
            .explain(t)
            .expect("every deleted tuple has a derivation");
        print!("{}", tree.render(db));
        println!(
            "  ({} derivation step(s), depth {})\n",
            tree.steps(),
            tree.depth()
        );
    }

    // Tuples that survive have no derivation.
    let survivor = testkit::tid_of(db, "Author(2, Maggie)");
    assert!(prov.explain(survivor).is_none());
    println!("Author(2, Maggie) is never deleted — no derivation exists.\n");

    // The full provenance graph, ready for `dot -Tsvg`.
    println!("Figure 5 as Graphviz DOT:\n");
    print!("{}", prov.to_dot(db));
}

#!/usr/bin/env python3
"""Bench regression gate.

Compares a freshly measured `repro bench-json` record against a committed
baseline (`BENCH_pr2.json` by default) and fails when any serial entry
present in both regressed by more than the tolerance factor. Quick-mode CI
measurements are noisy, hence the generous default of 2.0x; the gate exists
to catch order-of-magnitude accidents (a probe plan falling back to scans,
an index rebuilt per round), not single-digit-percent drift.

Usage:
    bench_gate.py CURRENT.json [BASELINE.json] [--tolerance 2.0]

Also prints the incremental_rerepair speedup (full / incremental) per
workload when the current record carries that group, and fails if any
speedup drops below --min-speedup (default: informational only, 0).
"""

import argparse
import json
import sys


def serial_entries(path):
    with open(path) as f:
        doc = json.load(f)
    return {r["bench"]: r["mean_ns"] for r in doc["runs"]["serial"]}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("baseline", nargs="?", default="BENCH_pr2.json")
    ap.add_argument("--tolerance", type=float, default=2.0)
    ap.add_argument("--min-speedup", type=float, default=0.0)
    args = ap.parse_args()

    current = serial_entries(args.current)
    baseline = serial_entries(args.baseline)

    failures = []
    compared = 0
    for bench, base_ns in sorted(baseline.items()):
        cur_ns = current.get(bench)
        if cur_ns is None:
            continue
        compared += 1
        ratio = cur_ns / base_ns if base_ns > 0 else float("inf")
        flag = " <-- REGRESSION" if ratio > args.tolerance else ""
        print(f"  {bench:<55} {base_ns:>14.1f} -> {cur_ns:>14.1f} ns ({ratio:>5.2f}x){flag}")
        if ratio > args.tolerance:
            failures.append((bench, ratio))
    if compared == 0:
        print("bench_gate: no overlapping serial entries — wrong files?", file=sys.stderr)
        return 2

    # Incremental re-repair speedups, when measured.
    pairs = {}
    for bench, ns in current.items():
        parts = bench.split("/")
        if len(parts) == 3 and parts[0] == "incremental_rerepair":
            pairs.setdefault(parts[2], {})[parts[1]] = ns
    for name, modes in sorted(pairs.items()):
        if "full" in modes and "incremental" in modes:
            speedup = modes["full"] / modes["incremental"]
            print(f"  incremental_rerepair/{name:<33} speedup {speedup:>5.2f}x "
                  f"(full {modes['full']:.0f} ns / incremental {modes['incremental']:.0f} ns)")
            if args.min_speedup and speedup < args.min_speedup:
                failures.append((f"incremental_rerepair/{name}", speedup))

    if failures:
        print(f"bench_gate: {len(failures)} failure(s): {failures}", file=sys.stderr)
        return 1
    print(f"bench_gate: OK — {compared} serial entries within {args.tolerance}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

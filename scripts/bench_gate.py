#!/usr/bin/env python3
"""Bench regression + parallel-parity gate.

Compares a freshly measured `repro bench-json` record against a committed
baseline and fails when any serial entry present in both regressed by more
than the tolerance factor. Quick-mode CI measurements are noisy, hence the
generous default of 2.0x; the committed BENCH_*.json files are full-mode
and gated tighter (the PR 5 acceptance bar is --tolerance 1.1 against
BENCH_pr4.json). The gate exists to catch order-of-magnitude accidents (a
probe plan falling back to scans, an index rebuilt per round), not
single-digit-percent drift — except where a tight tolerance is requested
explicitly on full-mode numbers.

Three checks, in order:

1. **Serial regression** — every `runs[--runs-key]` entry shared with the
   baseline must satisfy current <= baseline * tolerance.
2. **Parallel parity** — every `semantics_scale/<workload>/<sem>/t<N>`
   family in the current record must report one identical delete-set
   `size` across all thread counts. A size mismatch means the morsel
   scheduler broke determinism: hard failure, no tolerance.
3. **Parallel speedup** (informational unless --min-parallel-speedup > 0)
   — prints t1/tN per family; with a threshold set, at least
   --speedup-workloads families must reach it at --speedup-threads.
   Meaningless on single-core runners (leave the threshold at 0 there;
   see EXPERIMENTS.md for the multi-core protocol).

Also prints the incremental_rerepair speedup (full / incremental) per
workload when the current record carries that group, failing below
--min-speedup (default: informational only, 0), the durability
cold-open speedup (tsv_ingest / cold_open) per dataset, failing below
--min-cold-open-speedup (default: informational only, 0), and the
cost-based planning speedup (planner static / cost) per workload, failing
below --min-plan-speedup (default: informational only, 0). The planner
pair also carries the enumerated assignment count as `size`; a mismatch
between the static and cost records is a hard parity failure.

Usage:
    bench_gate.py CURRENT.json [BASELINE.json] [--tolerance 2.0]
                  [--min-speedup 0] [--min-cold-open-speedup 0]
                  [--min-plan-speedup 0] [--min-parallel-speedup 0]
                  [--speedup-threads 4] [--speedup-workloads 2]
                  [--runs-key serial]
"""

import argparse
import json
import sys


def load_run(path, key):
    with open(path) as f:
        doc = json.load(f)
    runs = doc["runs"]
    if key not in runs:
        raise SystemExit(f"bench_gate: {path} has no runs[{key!r}] (keys: {list(runs)})")
    return runs[key]


def mean_ns_by_bench(records):
    return {r["bench"]: r["mean_ns"] for r in records}


def scale_families(records):
    """semantics_scale entries grouped as (workload, semantics) -> {t<N>: record}."""
    fams = {}
    for r in records:
        parts = r["bench"].split("/")
        if len(parts) == 4 and parts[0] == "semantics_scale":
            fams.setdefault((parts[1], parts[2]), {})[parts[3]] = r
    return fams


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("baseline", nargs="?", default="BENCH_pr2.json")
    ap.add_argument("--tolerance", type=float, default=2.0)
    ap.add_argument("--min-speedup", type=float, default=0.0,
                    help="minimum incremental_rerepair full/incremental ratio")
    ap.add_argument("--min-cold-open-speedup", type=float, default=0.0,
                    help="minimum durability tsv_ingest/cold_open ratio")
    ap.add_argument("--min-plan-speedup", type=float, default=0.0,
                    help="minimum planner static/cost ratio")
    ap.add_argument("--min-parallel-speedup", type=float, default=0.0,
                    help="minimum t1/t<N> ratio for semantics_scale families")
    ap.add_argument("--speedup-threads", type=int, default=4,
                    help="thread count the parallel-speedup check reads")
    ap.add_argument("--speedup-workloads", type=int, default=2,
                    help="families that must reach --min-parallel-speedup")
    ap.add_argument("--runs-key", default="serial",
                    help="runs object key to compare (default: serial)")
    args = ap.parse_args()

    current_records = load_run(args.current, args.runs_key)
    current = mean_ns_by_bench(current_records)
    baseline = mean_ns_by_bench(load_run(args.baseline, args.runs_key))

    failures = []

    # 1. Serial regression against the baseline (overlapping entries only;
    # semantics_scale families are new in PR 5 and simply don't overlap
    # with older baselines).
    compared = 0
    for bench, base_ns in sorted(baseline.items()):
        cur_ns = current.get(bench)
        if cur_ns is None:
            continue
        compared += 1
        ratio = cur_ns / base_ns if base_ns > 0 else float("inf")
        flag = " <-- REGRESSION" if ratio > args.tolerance else ""
        print(f"  {bench:<55} {base_ns:>14.1f} -> {cur_ns:>14.1f} ns ({ratio:>5.2f}x){flag}")
        if ratio > args.tolerance:
            failures.append((bench, ratio))
    if compared == 0:
        print("bench_gate: no overlapping serial entries — wrong files?", file=sys.stderr)
        return 2

    # 2 + 3. Parallel parity and speedup over semantics_scale families.
    fams = scale_families(current_records)
    reached = 0
    for (workload, sem), by_threads in sorted(fams.items()):
        sizes = {t: r.get("size") for t, r in by_threads.items()}
        distinct = set(sizes.values())
        if None in distinct or len(distinct) != 1:
            print(f"  semantics_scale/{workload}/{sem:<24} PARITY VIOLATION: sizes {sizes}")
            failures.append((f"parity:{workload}/{sem}", sizes))
            continue
        t1 = by_threads.get("t1")
        tn = by_threads.get(f"t{args.speedup_threads}")
        if t1 and tn and tn["mean_ns"] > 0:
            speedup = t1["mean_ns"] / tn["mean_ns"]
            reached += speedup >= args.min_parallel_speedup > 0
            print(f"  semantics_scale/{workload}/{sem:<24} size {next(iter(distinct)):>8} "
                  f"t1/t{args.speedup_threads} speedup {speedup:>5.2f}x")
    if args.min_parallel_speedup > 0 and fams and reached < args.speedup_workloads:
        failures.append((
            f"parallel-speedup(<{args.speedup_workloads} families reached "
            f"{args.min_parallel_speedup}x at t{args.speedup_threads})", reached))

    # Incremental re-repair speedups, when measured.
    pairs = {}
    for bench, ns in current.items():
        parts = bench.split("/")
        if len(parts) == 3 and parts[0] == "incremental_rerepair":
            pairs.setdefault(parts[2], {})[parts[1]] = ns
    for name, modes in sorted(pairs.items()):
        if "full" in modes and "incremental" in modes:
            speedup = modes["full"] / modes["incremental"]
            print(f"  incremental_rerepair/{name:<33} speedup {speedup:>5.2f}x "
                  f"(full {modes['full']:.0f} ns / incremental {modes['incremental']:.0f} ns)")
            if args.min_speedup and speedup < args.min_speedup:
                failures.append((f"incremental_rerepair/{name}", speedup))

    # Durability cold-open speedups, when measured: opening the newest
    # snapshot must beat re-ingesting the same database from TSV.
    pairs = {}
    for bench, ns in current.items():
        parts = bench.split("/")
        if len(parts) == 3 and parts[0] == "durability":
            pairs.setdefault(parts[2], {})[parts[1]] = ns
    for name, modes in sorted(pairs.items()):
        if "tsv_ingest" in modes and "cold_open" in modes:
            speedup = modes["tsv_ingest"] / modes["cold_open"]
            print(f"  durability/{name:<44} cold-open speedup {speedup:>5.2f}x "
                  f"(tsv {modes['tsv_ingest']:.0f} ns / cold_open {modes['cold_open']:.0f} ns)")
            if args.min_cold_open_speedup and speedup < args.min_cold_open_speedup:
                failures.append((f"durability/{name}", speedup))

    # Cost-based planning speedups, when measured: the statistics-driven
    # atom order must beat the adversarial textual order. Both records
    # carry the enumerated assignment count as `size` — the two planners
    # must visit the identical assignment set.
    pairs = {}
    for r in current_records:
        parts = r["bench"].split("/")
        if len(parts) == 3 and parts[0] == "planner":
            pairs.setdefault(parts[2], {})[parts[1]] = r
    for name, modes in sorted(pairs.items()):
        if "static" in modes and "cost" in modes:
            sizes = {m: r.get("size") for m, r in modes.items()}
            if None in sizes.values() or len(set(sizes.values())) != 1:
                print(f"  planner/{name:<45} PARITY VIOLATION: sizes {sizes}")
                failures.append((f"planner-parity:{name}", sizes))
                continue
            speedup = modes["static"]["mean_ns"] / modes["cost"]["mean_ns"]
            print(f"  planner/{name:<45} plan speedup {speedup:>5.2f}x "
                  f"(static {modes['static']['mean_ns']:.0f} ns / "
                  f"cost {modes['cost']['mean_ns']:.0f} ns)")
            if args.min_plan_speedup and speedup < args.min_plan_speedup:
                failures.append((f"planner/{name}", speedup))

    if failures:
        print(f"bench_gate: {len(failures)} failure(s): {failures}", file=sys.stderr)
        return 1
    parity = f", {len(fams)} scale families parity-checked" if fams else ""
    print(f"bench_gate: OK — {compared} serial entries within {args.tolerance}x of baseline{parity}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Crash-safety soak: repeatedly kill -9 a delta-repair process mid-churn
# and verify the durable store recovers to an acknowledged state.
#
# Each cycle starts `delta-repair --data-dir <store> --churn <N>` (a long
# run of apply-End / undo batches, net-zero on the database), kills it
# dead after a short random delay, then reopens the store. Recovery must
# exit 0 and report one of the two acknowledged tuple counts: 5 (between
# cycles / after an undo) or 2 (after an apply, before its undo). Any
# other count, a crash on reopen, or a non-zero exit fails the soak.
#
# Usage: scripts/crash_loop.sh [cycles] [path-to-delta-repair]
#   cycles  kill/recover iterations (default 10)
#   binary  defaults to target/release/delta-repair (built if missing)

set -u

CYCLES="${1:-10}"
BIN="${2:-target/release/delta-repair}"

if [ ! -x "$BIN" ]; then
    echo "crash_loop: building $BIN"
    cargo build --release -p cli || exit 1
fi

WORK="$(mktemp -d)"
STORE="$WORK/store"
trap 'rm -rf "$WORK"' EXIT

cat > "$WORK/db.tsv" <<'EOF'
# relation Grant(gid: int, name: string)
1	NSF
2	ERC
# relation AuthGrant(aid: int, gid: int)
2	1
4	2
5	2
EOF

cat > "$WORK/rules.dl" <<'EOF'
delta Grant(g, n) :- Grant(g, n), n = 'ERC'.
delta AuthGrant(a, g) :- AuthGrant(a, g), delta Grant(g, n).
EOF

echo "crash_loop: initializing durable store"
"$BIN" --db "$WORK/db.tsv" --data-dir "$STORE" \
       --program "$WORK/rules.dl" --semantics end > /dev/null || {
    echo "crash_loop: FAIL — could not create the store"
    exit 1
}

for i in $(seq 1 "$CYCLES"); do
    # A churn count far beyond what fits in the kill window: every apply
    # and undo is a WAL batch, so the SIGKILL lands mid-write somewhere.
    "$BIN" --data-dir "$STORE" --program "$WORK/rules.dl" \
           --semantics end --churn 1000000 > /dev/null 2>&1 &
    pid=$!
    # 0.05–0.29s, cycling through the range so kills land at different
    # journal positions. Zero-pad: "0.%d" would turn 5/100 into 5/10.
    sleep "$(printf '0.%02d' $(( 5 + (i * 4) % 25 )))"
    kill -9 "$pid" 2> /dev/null
    wait "$pid" 2> /dev/null

    out="$("$BIN" --data-dir "$STORE" --program "$WORK/rules.dl" --semantics end 2>&1)"
    code=$?
    if [ "$code" -ne 0 ]; then
        echo "crash_loop: FAIL cycle $i — reopen exited $code"
        echo "$out"
        exit 1
    fi
    tuples="$(echo "$out" | sed -n 's/^database: \([0-9]*\) tuples.*/\1/p')"
    case "$tuples" in
        5|2) ;;
        *)
            echo "crash_loop: FAIL cycle $i — recovered to $tuples tuples (want 5 or 2)"
            echo "$out"
            exit 1
            ;;
    esac
    recov="$(echo "$out" | grep '^recovery:' || true)"
    echo "crash_loop: cycle $i OK — $tuples tuples${recov:+ ($recov)}"
done

echo "crash_loop: PASS — $CYCLES kill -9 cycles, every recovery acknowledged"

#!/usr/bin/env python3
"""Determinism lint: deny unaudited std HashMap/HashSet in the engine crates.

The engine's contract is bit-identical output at any thread count and across
runs. `std::collections::HashMap`/`HashSet` use a randomly seeded hasher, so
*iterating* one leaks nondeterministic order into anything built from the
iteration. Every existing use has been audited (lookup-only, or the result is
sorted before it escapes) and pinned in ALLOWLIST below as an exact per-file
occurrence count.

The check is a ratchet:

* a file whose count **exceeds** its allowlisted count fails — audit the new
  use (prefer BTreeMap/BTreeSet, or sort before iterating) and, only if the
  use is order-safe, bump the entry;
* a file whose count **dropped** also fails — ratchet the entry down so the
  ceiling keeps tracking reality;
* occurrences in comments are ignored (the words are fine in prose).

Run from the repo root: `python3 scripts/lint_determinism.py`.
Exits 0 when clean, 1 with a per-file report otherwise.
"""

import re
import sys
from pathlib import Path

# Crates that must stay deterministic: everything between parsing and the
# final sorted delete-set. (cli/bench/workloads format output and may hash
# freely; triggers is covered transitively by what it calls.)
GUARDED_CRATES = ["storage", "datalog", "core", "sat", "provenance"]

TOKEN = re.compile(r"\bHash(Map|Set)\b")

# path (repo-relative, forward slashes) -> audited occurrence count.
ALLOWLIST = {
    "crates/core/src/end.rs": 2,
    "crates/core/src/engine.rs": 5,
    "crates/core/src/independent.rs": 1,
    "crates/core/src/session.rs": 2,
    "crates/core/src/step.rs": 4,
    "crates/datalog/src/analysis.rs": 3,
    "crates/datalog/src/ast.rs": 6,
    "crates/datalog/src/eval.rs": 2,
    "crates/datalog/src/validate.rs": 2,
    "crates/provenance/src/explain.rs": 9,
    "crates/provenance/src/formula.rs": 5,
    "crates/provenance/src/graph.rs": 7,
    "crates/sat/src/minones.rs": 0,
    "crates/storage/src/hash.rs": 3,
    "crates/storage/src/relation.rs": 1,
    "crates/storage/src/schema.rs": 2,
}


def strip_comments(text: str) -> str:
    """Blank out `//` line comments and `/* */` block comments.

    Keeps line numbers stable (newlines survive). Does not parse string
    literals — a "HashMap" inside a string would still count, which is the
    conservative direction for a lint.
    """
    out = []
    i, n = 0, len(text)
    in_line = in_block = False
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if in_line:
            if c == "\n":
                in_line = False
                out.append(c)
            i += 1
        elif in_block:
            if c == "*" and nxt == "/":
                in_block = False
                i += 2
            else:
                if c == "\n":
                    out.append(c)
                i += 1
        elif c == "/" and nxt == "/":
            in_line = True
            i += 2
        elif c == "/" and nxt == "*":
            in_block = True
            i += 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    failures = []
    seen = {}
    for crate in GUARDED_CRATES:
        src = root / "crates" / crate / "src"
        for path in sorted(src.rglob("*.rs")):
            rel = path.relative_to(root).as_posix()
            stripped = strip_comments(path.read_text(encoding="utf-8"))
            hits = [
                (lineno, line.strip())
                for lineno, line in enumerate(stripped.splitlines(), start=1)
                if TOKEN.search(line)
            ]
            seen[rel] = len(hits)
            allowed = ALLOWLIST.get(rel, 0)
            if len(hits) > allowed:
                lines = "\n".join(f"    {rel}:{ln}: {txt}" for ln, txt in hits)
                failures.append(
                    f"  {rel}: {len(hits)} HashMap/HashSet use(s), {allowed} allowed\n{lines}"
                )
            elif len(hits) < allowed:
                failures.append(
                    f"  {rel}: allowlist says {allowed} but only {len(hits)} remain "
                    "— ratchet the entry down in scripts/lint_determinism.py"
                )
    for rel in ALLOWLIST:
        if rel not in seen:
            failures.append(
                f"  {rel}: allowlisted but no longer exists — remove the entry"
            )
    if failures:
        print("determinism lint FAILED:")
        print("\n".join(failures))
        print(
            "\nstd HashMap/HashSet iteration order is randomly seeded; new uses in\n"
            "the engine crates must be audited (lookup-only, or sorted before the\n"
            "order can escape). Prefer BTreeMap/BTreeSet. Audited uses are pinned\n"
            "in ALLOWLIST at the top of scripts/lint_determinism.py."
        )
        return 1
    total = sum(seen.values())
    print(
        f"determinism lint OK: {total} audited HashMap/HashSet use(s) "
        f"across {len(GUARDED_CRATES)} guarded crates"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

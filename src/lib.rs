//! # delta-repairs — declarative database repairs under four semantics
//!
//! A from-scratch Rust implementation of
//! *"On Multiple Semantics for Declarative Database Repairs"*
//! (Gilad, Deutch, Roy — SIGMOD 2020), including every substrate the paper's
//! prototype relied on: the relational store, the delta-rule datalog engine,
//! provenance, a Min-Ones SAT solver, a SQL-trigger interpreter and a
//! HoloClean-style cell-repair baseline.
//!
//! ## The model in one paragraph
//!
//! A **delta rule** is a datalog rule `ΔR(X) :- R(X), Q1, …, Ql` whose head is
//! a *delta relation* recording deletions from `R`; body atoms may mention
//! other delta relations, which is what expresses cascades. Given a database
//! `D` and a delta program `P`, a **stabilizing set** is a set of tuples `S`
//! such that `(D \ S) ∪ Δ(S)` satisfies no rule of `P`. The paper defines four
//! semantics that each pick a different stabilizing set:
//!
//! | semantics | flavour | complexity |
//! |-----------|---------|------------|
//! | [`Semantics::Independent`] | global minimum repair (denial constraints) | NP-hard (Alg. 1: provenance → Min-Ones SAT) |
//! | [`Semantics::Step`] | one rule firing at a time, minimum sequence (row triggers, causal rules) | NP-hard (Alg. 2: greedy provenance-graph traversal) |
//! | [`Semantics::Stage`] | semi-naive rounds, delete per round (statement triggers) | PTIME |
//! | [`Semantics::End`] | derive everything, delete at the end (plain datalog) | PTIME |
//!
//! ## Quickstart
//!
//! A [`RepairSession`] owns the database and the planned program; requests
//! go in, outcomes come out, and outcomes can be previewed, applied and
//! undone:
//!
//! ```
//! use delta_repairs::{RepairRequest, RepairSession, Semantics, testkit};
//!
//! // Figure 1's academic database and Figure 2's five delta rules.
//! let mut session =
//!     RepairSession::new(testkit::figure1_instance(), testkit::figure2_program())?;
//!
//! let end = session.run(Semantics::End);          // 8 tuples
//! let stage = session.run(Semantics::Stage);      // 7 tuples
//! let step = session.run(Semantics::Step);        // 5 tuples
//! let ind = session.run(Semantics::Independent);  // 3 tuples
//!
//! assert!(ind.size() <= step.size() && step.size() <= stage.size());
//! assert!(stage.size() <= end.size());
//! // Every result is a stabilizing set (Prop. 3.18).
//! for r in [&end, &stage, &step, &ind] {
//!     assert!(session.verify_stabilizing(r.deleted()));
//! }
//!
//! // Budgets and provenance capture ride on the request builder…
//! let exact = session.repair(
//!     &RepairRequest::new(Semantics::Independent)
//!         .node_budget(u64::MAX)
//!         .capture_provenance(true),
//! )?;
//! assert!(exact.proven_optimal());
//!
//! // …and committing is first-class: apply, inspect, roll back.
//! println!("{}", exact.preview(&session));
//! exact.apply(&mut session)?;
//! assert!(session.is_stable());
//! session.undo()?;
//! assert_eq!(session.db().total_rows(), 13);
//! # Ok::<(), delta_repairs::RepairError>(())
//! ```
//!
//! Long-lived sessions serve the mutate-then-re-repair loop
//! **incrementally**: mutations land in a storage-level journal, and the
//! next end-semantics repair advances a cached fixpoint checkpoint over
//! only the affected cone — bit-identical to a full recompute, an order
//! of magnitude faster for small deltas:
//!
//! ```
//! use delta_repairs::{RepairSession, Semantics, Value, testkit};
//!
//! let mut session =
//!     RepairSession::new(testkit::figure1_instance(), testkit::figure2_program())?;
//! let first = session.run(Semantics::End);            // full run, primes the checkpoint
//!
//! session.insert_batch("Grant", [[Value::Int(9), Value::str("ERC")]])?;
//! let second = session.run(Semantics::End);           // replays only the new cone
//! assert!(second.served_incrementally());
//! assert_eq!(second.size(), first.size() + 1);
//! second.apply(&mut session)?;                        // commit the re-repair
//! assert!(session.is_stable());
//! # Ok::<(), delta_repairs::RepairError>(())
//! ```
//!
//! The pre-0.2 [`Repairer`] is deprecated; it now shims onto the session's
//! dispatch and will be removed once downstream callers migrate (see
//! `repair_core::repairer` for the migration table).
//!
//! ## Crate map
//!
//! * [`storage`] — interned values, tuples with stable ids, per-column hash
//!   indexes, cheap bitset [`storage::State`] views (presence + Δ membership).
//! * [`datalog`] — delta-rule AST, parser, well-formedness validation
//!   (Def. 3.1 + safety), assignment enumeration and fixpoints.
//! * [`provenance`] — DNF provenance formulas (Alg. 1) and the layered
//!   provenance graph with tuple benefits (Alg. 2).
//! * [`sat`] — CNF + DPLL + branch-and-bound Min-Ones solver (the Z3 role).
//! * [`core`] (re-exported at the root) — the four semantics, Algorithms 1
//!   and 2, stability checking, result relationships (Table 3 / Fig. 3).
//! * [`triggers`] — "after delete, delete" SQL triggers with PostgreSQL's
//!   alphabetical and MySQL's creation-order firing policies.
//! * [`cellrepair`] — probabilistic cell repair in the style of HoloClean,
//!   the paper's comparison system.
//! * [`datagen`] — deterministic MAS + TPC-H-like generators and the
//!   error-injection used by the HoloClean comparison.
//! * [`workloads`] — the paper's Table 1 (20 MAS programs), Table 2
//!   (6 TPC-H programs) and DC1–DC4, constants pre-wired.
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

pub use repair_core::{
    end, engine, error, independent, relationships, repairer, result, session, stability, stage,
    step, testkit, AppliedRepair, Optimality, OptimalityCertificate, ParseSemanticsError,
    PhaseBreakdown, RepairError, RepairOutcome, RepairPreview, RepairProvenance, RepairRequest,
    RepairResult, RepairSession, Semantics,
};

#[allow(deprecated)]
pub use repair_core::Repairer;

pub use datalog::{
    analyze, parse_program, seed_rule, with_interventions, Analysis, Atom, CmpOp, Comparison,
    DatalogError, DenialConstraint, Program, Rule, Term,
};

pub use storage::{
    Attr, AttrType, Instance, RelId, RelationSchema, Schema, State, StorageError, Tuple, TupleId,
    Value,
};

/// The full storage substrate (also re-exported piecemeal at the root).
pub mod storage {
    pub use storage::*;
}

/// The full delta-rule language (also re-exported piecemeal at the root).
pub mod datalog {
    pub use datalog::*;
}

/// Provenance structures shared by Algorithms 1 and 2.
pub mod provenance {
    pub use provenance::*;
}

/// The Min-Ones SAT solver used by independent semantics.
pub mod sat {
    pub use sat::*;
}

/// The SQL-trigger interpreter (Section 6, "Comparison with Triggers").
pub mod triggers {
    pub use triggers::*;
}

/// HoloClean-style probabilistic cell repair (Section 6 comparison).
pub mod cellrepair {
    pub use cellrepair::*;
}

/// Seeded MAS / TPC-H data generators and error injection.
pub mod datagen {
    pub use datagen::*;
}

/// The paper's experimental programs with constants pre-wired.
pub mod workloads {
    pub use workloads::*;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_quickstart_runs() {
        let session =
            RepairSession::new(testkit::figure1_instance(), testkit::figure2_program()).unwrap();
        let ind = session.run(Semantics::Independent);
        assert_eq!(ind.size(), 3);
        assert!(session.verify_stabilizing(ind.deleted()));
    }

    #[test]
    fn facade_reexports_are_usable_together() {
        // Types from the facade and from sub-crates must be the same types.
        let p: Program = parse_program("delta R(x) :- R(x), x = 1.").unwrap();
        let mut s = Schema::new();
        s.relation("R", &[("x", AttrType::Int)]);
        let mut db = Instance::new(s);
        db.insert_values("R", [Value::Int(1)]).unwrap();
        let session = RepairSession::new(db, p).unwrap();
        let r = session.run(Semantics::End);
        assert_eq!(r.size(), 1);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_repairer_still_compiles_and_agrees() {
        let mut db = testkit::figure1_instance();
        let repairer = Repairer::new(&mut db, testkit::figure2_program()).unwrap();
        let session =
            RepairSession::new(testkit::figure1_instance(), testkit::figure2_program()).unwrap();
        assert_eq!(
            repairer.run(&db, Semantics::Step).deleted,
            session.run(Semantics::Step).deleted()
        );
    }
}

//! Degraded-mode guarantees of the two heuristic algorithms: whatever the
//! request budgets, the paper's correctness claim must survive — "any
//! satisfying assignment would form a stabilizing set" (Algorithm 1), and
//! the greedy traversal always returns a stabilizing set (Algorithm 2).

use delta_repairs::{testkit, RepairRequest, RepairSession, Semantics};

fn session() -> RepairSession {
    RepairSession::new(testkit::figure1_instance(), testkit::figure2_program()).unwrap()
}

fn degraded_requests() -> Vec<(&'static str, RepairRequest)> {
    let ind = || RepairRequest::new(Semantics::Independent);
    vec![
        ("first_solution_only", ind().first_solution_only(true)),
        ("tiny_budget", ind().node_budget(1)),
        (
            "no_decomposition",
            ind().decompose(false).node_budget(100_000),
        ),
        (
            "everything_off",
            ind()
                .decompose(false)
                .node_budget(1)
                .first_solution_only(true),
        ),
    ]
}

/// Algorithm 1 under every degraded configuration still stabilizes the
/// running example; only optimality may be lost.
#[test]
fn independent_stabilizes_under_all_solver_options() {
    let s = session();
    for (label, req) in degraded_requests() {
        let r = s.repair(&req).unwrap();
        assert!(
            s.verify_stabilizing(r.deleted()),
            "{label}: result must stabilize"
        );
        assert!(
            r.size() >= 3,
            "{label}: below the true minimum is impossible"
        );
        assert!(
            r.size() <= s.db().total_rows(),
            "{label}: the whole database bounds any repair"
        );
    }
}

/// The exact configuration is optimal and says so.
#[test]
fn unbudgeted_solve_proves_optimality() {
    let s = session();
    let r = s
        .repair(&RepairRequest::new(Semantics::Independent).node_budget(u64::MAX))
        .unwrap();
    assert!(r.proven_optimal());
    assert_eq!(
        r.optimality().certificate,
        delta_repairs::OptimalityCertificate::SearchComplete
    );
    assert_eq!(r.size(), 3);
}

/// A budget of one node cannot prove optimality and must report that.
#[test]
fn tiny_budget_reports_non_optimal_when_cut() {
    let s = session();
    let r = s
        .repair(&RepairRequest::new(Semantics::Independent).node_budget(1))
        .unwrap();
    // The solver may still finish within one node per component after
    // simplification; if it did not, the flag must be false — and either
    // way the set stabilizes.
    if r.size() > 3 {
        assert!(!r.proven_optimal());
        assert_eq!(
            r.optimality().certificate,
            delta_repairs::OptimalityCertificate::NodeBudgetExhausted
        );
    }
    assert!(s.verify_stabilizing(r.deleted()));
}

/// A vanishing time budget degrades the solve phase to the first-solution
/// descent — still stabilizing, certified as time-cut.
#[test]
fn exhausted_time_budget_degrades_gracefully() {
    let s = session();
    let r = s
        .repair(
            &RepairRequest::new(Semantics::Independent)
                .time_budget(std::time::Duration::from_nanos(1)),
        )
        .unwrap();
    assert!(s.verify_stabilizing(r.deleted()));
    assert!(!r.proven_optimal());
    assert_eq!(
        r.optimality().certificate,
        delta_repairs::OptimalityCertificate::TimeBudgetExhausted
    );
    // A generous budget never triggers the degradation on this instance.
    let relaxed = s
        .repair(
            &RepairRequest::new(Semantics::Independent)
                .time_budget(std::time::Duration::from_secs(3600)),
        )
        .unwrap();
    assert!(relaxed.proven_optimal());
    assert_eq!(relaxed.size(), 3);
}

/// Phase breakdowns are internally consistent across semantics.
#[test]
fn phase_breakdowns_are_consistent() {
    let s = session();
    for sem in Semantics::ALL {
        let r = s.run(sem);
        let b = r.breakdown();
        assert_eq!(b.total(), b.eval + b.process + b.solve, "{sem}");
        let (e, p, so) = b.fractions();
        if b.total().as_nanos() > 0 {
            assert!((e + p + so - 1.0).abs() < 1e-9, "{sem}: fractions sum to 1");
        }
        match sem {
            // The PTIME fixpoints do everything in eval.
            Semantics::End | Semantics::Stage => {
                assert_eq!(b.process, std::time::Duration::ZERO, "{sem}");
                assert_eq!(b.solve, std::time::Duration::ZERO, "{sem}");
            }
            // Both heuristic algorithms have a non-trivial eval phase.
            Semantics::Step | Semantics::Independent => {
                assert!(b.eval > std::time::Duration::ZERO, "{sem}");
            }
        }
    }
}

/// `run_all` returns the paper's presentation order.
#[test]
fn run_all_order_is_stable() {
    let s = session();
    let results = s.run_all();
    let order: Vec<_> = results.iter().map(|r| r.semantics()).collect();
    assert_eq!(
        order,
        vec![
            Semantics::Independent,
            Semantics::Step,
            Semantics::Stage,
            Semantics::End
        ]
    );
}

//! Degraded-mode guarantees of the two heuristic algorithms: whatever the
//! solver options, the paper's correctness claim must survive — "any
//! satisfying assignment would form a stabilizing set" (Algorithm 1), and
//! the greedy traversal always returns a stabilizing set (Algorithm 2).

use delta_repairs::sat::MinOnesOptions;
use delta_repairs::{testkit, Repairer, Semantics};

fn degraded_options() -> Vec<(&'static str, MinOnesOptions)> {
    vec![
        (
            "first_solution_only",
            MinOnesOptions {
                first_solution_only: true,
                ..MinOnesOptions::default()
            },
        ),
        (
            "tiny_budget",
            MinOnesOptions {
                node_budget: 1,
                ..MinOnesOptions::default()
            },
        ),
        (
            "no_decomposition",
            MinOnesOptions {
                decompose: false,
                node_budget: 100_000,
                ..MinOnesOptions::default()
            },
        ),
        (
            "everything_off",
            MinOnesOptions {
                decompose: false,
                node_budget: 1,
                first_solution_only: true,
            },
        ),
    ]
}

/// Algorithm 1 under every degraded configuration still stabilizes the
/// running example; only optimality may be lost.
#[test]
fn independent_stabilizes_under_all_solver_options() {
    for (label, opts) in degraded_options() {
        let mut db = testkit::figure1_instance();
        let repairer = Repairer::with_options(&mut db, testkit::figure2_program(), opts).unwrap();
        let r = repairer.run(&db, Semantics::Independent);
        assert!(
            repairer.verify_stabilizing(&db, &r.deleted),
            "{label}: result must stabilize"
        );
        assert!(
            r.size() >= 3,
            "{label}: below the true minimum is impossible"
        );
        assert!(
            r.size() <= db.total_rows(),
            "{label}: the whole database bounds any repair"
        );
    }
}

/// The exact configuration is optimal and says so.
#[test]
fn unbudgeted_solve_proves_optimality() {
    let mut db = testkit::figure1_instance();
    let repairer = Repairer::with_options(
        &mut db,
        testkit::figure2_program(),
        MinOnesOptions::default(), // unbounded budget
    )
    .unwrap();
    let r = repairer.run(&db, Semantics::Independent);
    assert!(r.proven_optimal);
    assert_eq!(r.size(), 3);
}

/// A budget of one node cannot prove optimality and must report that.
#[test]
fn tiny_budget_reports_non_optimal_when_cut() {
    let mut db = testkit::figure1_instance();
    let repairer = Repairer::with_options(
        &mut db,
        testkit::figure2_program(),
        MinOnesOptions {
            node_budget: 1,
            ..MinOnesOptions::default()
        },
    )
    .unwrap();
    let r = repairer.run(&db, Semantics::Independent);
    // The solver may still finish within one node per component after
    // simplification; if it did not, the flag must be false — and either
    // way the set stabilizes.
    if r.size() > 3 {
        assert!(!r.proven_optimal);
    }
    assert!(repairer.verify_stabilizing(&db, &r.deleted));
}

/// Phase breakdowns are internally consistent across semantics.
#[test]
fn phase_breakdowns_are_consistent() {
    let mut db = testkit::figure1_instance();
    let repairer = Repairer::new(&mut db, testkit::figure2_program()).unwrap();
    for sem in Semantics::ALL {
        let r = repairer.run(&db, sem);
        let b = r.breakdown;
        assert_eq!(b.total(), b.eval + b.process + b.solve, "{sem}");
        let (e, p, s) = b.fractions();
        if b.total().as_nanos() > 0 {
            assert!((e + p + s - 1.0).abs() < 1e-9, "{sem}: fractions sum to 1");
        }
        match sem {
            // The PTIME fixpoints do everything in eval.
            Semantics::End | Semantics::Stage => {
                assert_eq!(b.process, std::time::Duration::ZERO, "{sem}");
                assert_eq!(b.solve, std::time::Duration::ZERO, "{sem}");
            }
            // Both heuristic algorithms have a non-trivial eval phase.
            Semantics::Step | Semantics::Independent => {
                assert!(b.eval > std::time::Duration::ZERO, "{sem}");
            }
        }
    }
}

/// `run_all` returns the paper's presentation order.
#[test]
fn run_all_order_is_stable() {
    let mut db = testkit::figure1_instance();
    let repairer = Repairer::new(&mut db, testkit::figure2_program()).unwrap();
    let results = repairer.run_all(&db);
    let order: Vec<_> = results.iter().map(|r| r.semantics).collect();
    assert_eq!(
        order,
        vec![
            Semantics::Independent,
            Semantics::Step,
            Semantics::Stage,
            Semantics::End
        ]
    );
}

//! The HoloClean-substitute pipeline against the four semantics — the
//! Tables 4–5 comparison, mechanized at test scale.

use delta_repairs::cellrepair::{count_violating_tuples, repair, CellRepairConfig, Table};
use delta_repairs::datagen::{author_table, inject_errors};
use delta_repairs::workloads::{author_instance_from_table, dc_delta_program, paper_dcs};
use delta_repairs::RepairSession;

fn total_violations(table: &Table) -> usize {
    paper_dcs()
        .iter()
        .map(|dc| count_violating_tuples(table, dc))
        .sum()
}

/// A clean generated table has no DC violations; injection creates them in
/// proportion to the requested error count.
#[test]
fn injection_creates_detectable_violations() {
    let mut table = author_table(800, 42);
    assert_eq!(total_violations(&table), 0, "generator output is clean");
    let injected = inject_errors(&mut table, 80, 43);
    assert_eq!(injected.len(), 80);
    let v = total_violations(&table);
    assert!(
        v >= 80,
        "each injected duplicate violates at least one DC, got {v}"
    );
}

/// Error injection is deterministic in the seed.
#[test]
fn injection_is_deterministic() {
    let mut t1 = author_table(500, 1);
    let mut t2 = author_table(500, 1);
    let e1 = inject_errors(&mut t1, 50, 2);
    let e2 = inject_errors(&mut t2, 50, 2);
    assert_eq!(t1.rows, t2.rows);
    assert_eq!(e1.len(), e2.len());
}

/// Table 4's headline: all four semantics leave zero violations, and
/// independent deletes no more tuples than end/stage.
#[test]
fn semantics_always_fix_all_violations() {
    let mut table = author_table(600, 7);
    inject_errors(&mut table, 60, 11);
    let db = author_instance_from_table(&table);
    let session = RepairSession::new(db, dc_delta_program()).unwrap();
    let [ind, step, stage, end] = session.run_all();
    for r in [&ind, &step, &stage, &end] {
        assert!(
            session.verify_stabilizing(r.deleted()),
            "{} must fix every violation",
            r.semantics()
        );
    }
    assert!(ind.size() <= step.size());
    assert!(stage.size() <= end.size());
    // DC-style programs: end/stage delete whole violation clusters, so
    // they over-delete relative to independent (Table 4's +columns).
    assert!(ind.size() < end.size());
}

/// Table 5's headline: the probabilistic cell repairer reduces violations
/// substantially but is not guaranteed to eliminate them.
#[test]
fn cell_repair_reduces_but_may_not_eliminate_violations() {
    let mut table = author_table(1000, 7);
    inject_errors(&mut table, 120, 11);
    let before = total_violations(&table);
    let report = repair(&mut table, &paper_dcs(), &CellRepairConfig::default());
    let after = total_violations(&table);
    assert!(
        report.repairs.len() > 50,
        "the repairer must actually repair"
    );
    assert!(
        after < before / 2,
        "repairs must reduce violations substantially ({before} -> {after})"
    );
    assert!(report.noisy_cells >= report.repairs.len());
}

/// Raising the confidence margin produces more skips and fewer repairs —
/// the under-repair knob.
#[test]
fn confidence_margin_controls_under_repair() {
    let mut base = author_table(800, 7);
    inject_errors(&mut base, 100, 11);
    let mut cautious = base.clone();
    let dcs = paper_dcs();
    let default_report = repair(&mut base, &dcs, &CellRepairConfig::default());
    let cautious_report = repair(
        &mut cautious,
        &dcs,
        &CellRepairConfig {
            confidence_margin: 0.9,
            ..CellRepairConfig::default()
        },
    );
    assert!(cautious_report.repairs.len() <= default_report.repairs.len());
    assert!(cautious_report.skipped_low_confidence >= default_report.skipped_low_confidence);
}

/// Cell repair is deterministic in the config seed.
#[test]
fn cell_repair_is_deterministic() {
    let mut t1 = author_table(600, 3);
    inject_errors(&mut t1, 60, 5);
    let mut t2 = t1.clone();
    let r1 = repair(&mut t1, &paper_dcs(), &CellRepairConfig::default());
    let r2 = repair(&mut t2, &paper_dcs(), &CellRepairConfig::default());
    assert_eq!(r1.repairs, r2.repairs);
    assert_eq!(t1.rows, t2.rows);
}

/// The violation counter agrees with a naive quadratic recount.
#[test]
fn violation_counter_matches_naive_recount() {
    let mut table = author_table(300, 9);
    inject_errors(&mut table, 30, 10);
    for dc in paper_dcs() {
        let fast = count_violating_tuples(&table, &dc);
        let mut violating = vec![false; table.rows.len()];
        for i in 0..table.rows.len() {
            for j in 0..table.rows.len() {
                if i != j && dc.violates(&table, i, j) {
                    violating[i] = true;
                    violating[j] = true;
                }
            }
        }
        let naive = violating.iter().filter(|&&b| b).count();
        assert_eq!(fast, naive, "{}", dc.name);
    }
}

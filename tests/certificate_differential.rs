//! The static semantics-equivalence certificates, differentially tested
//! from the outside:
//!
//! * **cert-on vs cert-off** — on every Table 1 / Table 2 / zipf workload
//!   (29 programs) and all four semantics, a request served through the
//!   certificate must produce a **bit-identical delete-set** (ids *and*
//!   order) to the same request with `.certificates(false)`, which runs the
//!   genuine per-semantics algorithm;
//! * at least one workload per family is demonstrably *served* via the
//!   certificate for a semantics cheaper than its genuine algorithm
//!   (that's the whole point of the pass);
//! * **static ⇒ runtime** — whenever `certify` claims interaction freedom,
//!   the end-semantics provenance graph built on the actual data must
//!   satisfy `ProvGraph::is_interaction_free` (the certificate's soundness
//!   hinges on this implication holding on *every* database);
//! * a proptest over random databases × random rule subsets: certificate
//!   dispatch never changes a delete-set, certified or not.

use delta_repairs::datagen::{mas, scale, tpch, MasConfig, ScaleConfig, TpchConfig};
use delta_repairs::datalog::certify;
use delta_repairs::provenance::ProvGraph;
use delta_repairs::workloads::{mas_programs, tpch_programs, zipf_programs, Workload};
use delta_repairs::{
    end, parse_program, Instance, OptimalityCertificate, Program, RepairRequest, RepairSession,
    Semantics,
};
use proptest::prelude::*;

/// Exercise one workload: run all four semantics with certificates enabled
/// (the default) and disabled, compare delete-sets bit for bit, and return
/// how many of the four requests were actually served via the certificate.
fn assert_certified_identical(label: &str, db: &Instance, program: &Program) -> usize {
    let session =
        RepairSession::new(db.clone(), program.clone()).unwrap_or_else(|e| panic!("{label}: {e}"));
    let mut served = 0;
    for sem in Semantics::ALL {
        let genuine = session
            .repair(&RepairRequest::new(sem).certificates(false))
            .unwrap_or_else(|e| panic!("{label}/{sem}: {e}"));
        let certified = session
            .repair(&RepairRequest::new(sem))
            .unwrap_or_else(|e| panic!("{label}/{sem}: {e}"));
        assert!(
            !genuine.served_via_certificate(),
            "{label}/{sem}: .certificates(false) must opt out of dispatch"
        );
        assert_eq!(
            genuine.deleted(),
            certified.deleted(),
            "{label}/{sem}: certificate dispatch changed the delete-set"
        );
        assert_eq!(
            certified.semantics(),
            sem,
            "{label}/{sem}: outcome must report the *requested* semantics"
        );
        if certified.served_via_certificate() {
            assert_ne!(sem, Semantics::End, "end is never served via certificate");
            assert!(
                certified.proven_optimal(),
                "{label}/{sem}: a certified outcome is proven by construction"
            );
            if !certified.deleted().is_empty() {
                assert_eq!(
                    certified.optimality().certificate,
                    OptimalityCertificate::StaticEquivalence,
                    "{label}/{sem}: nonempty certified outcome carries the marker"
                );
            }
            served += 1;
        }
    }
    // Dispatch must agree with the session's published certificate.
    let cert = session.certificate();
    let expected = [
        cert.pure_cascade,                            // independent
        cert.interaction_free,                        // step
        cert.single_stratum || cert.interaction_free, // stage
    ]
    .iter()
    .filter(|&&b| b)
    .count();
    assert_eq!(
        served, expected,
        "{label}: served {served} semantics but the certificate {cert:?} covers {expected}"
    );
    served
}

/// Static interaction freedom must imply the runtime property on the
/// workload's actual data — this is the load-bearing implication in the
/// certificate's soundness argument.
fn assert_static_implies_runtime(label: &str, db: &Instance, program: &Program) {
    if !certify(program).interaction_free {
        return;
    }
    let session =
        RepairSession::new(db.clone(), program.clone()).unwrap_or_else(|e| panic!("{label}: {e}"));
    let out = end::run(session.db(), session.evaluator());
    let graph = ProvGraph::build(&out.assignments, &out.layers);
    assert!(
        graph.is_interaction_free(),
        "{label}: statically interaction-free but the runtime graph disagrees"
    );
}

fn exercise_family(label: &str, db: &Instance, workloads: &[Workload]) -> usize {
    let mut served_total = 0;
    for w in workloads {
        served_total += assert_certified_identical(&w.name, db, &w.program);
        assert_static_implies_runtime(&w.name, db, &w.program);
    }
    assert!(
        served_total > 0,
        "{label}: no workload was served via certificate — the pass is inert"
    );
    served_total
}

#[test]
fn certificates_are_sound_on_all_mas_workloads() {
    let data = mas::generate(&MasConfig::scaled(0.02));
    let workloads = mas_programs(&data);
    assert_eq!(workloads.len(), 20, "all of Table 1");
    let served = exercise_family("mas", &data.db, &workloads);
    // 11 pure cascades (3 semantics each) + 5 interaction-free (2) +
    // 2 single-stratum-only (1): the classification is part of the golden
    // surface — a certificate silently weakening would show up here.
    assert_eq!(served, 45, "MAS certificate coverage changed");
}

#[test]
fn certificates_are_sound_on_all_tpch_workloads() {
    let data = tpch::generate(&TpchConfig::scaled(0.01));
    let workloads = tpch_programs(&data);
    assert_eq!(workloads.len(), 6, "all of Table 2");
    let served = exercise_family("tpch", &data.db, &workloads);
    // tpch-2 pure cascade (3) + tpch-1/3/4/6 interaction-free (2 each).
    assert_eq!(served, 11, "TPC-H certificate coverage changed");
}

#[test]
fn certificates_are_sound_on_zipf_workloads() {
    let data = scale::generate(&ScaleConfig::scaled(0.05));
    let workloads = zipf_programs(&data);
    assert_eq!(workloads.len(), 3);
    exercise_family("zipf", &data.db, &workloads);
}

// ---------------------------------------------------------------------------
// Property: certificate dispatch never changes a delete-set.
// ---------------------------------------------------------------------------

/// Same pool as tests/session_api.rs: covers cascades, single-stratum
/// DC-style rules, shared witnesses (interactions), and multi-delta bodies,
/// so random subsets land on every certificate class including "none".
const RULE_POOL: [&str; 6] = [
    "delta R(x) :- R(x), x = 0.",
    "delta R(x) :- R(x), S(x, y), T(y).",
    "delta S(x, y) :- S(x, y), delta R(x).",
    "delta S(x, y) :- S(x, y), T(y), x != y.",
    "delta T(y) :- T(y), S(x, y), delta R(x).",
    "delta T(y) :- T(y), delta S(x, y).",
];

fn build_db(r: &[i64], s: &[(i64, i64)], t: &[i64]) -> Instance {
    let mut schema = delta_repairs::Schema::new();
    schema.relation("R", &[("x", delta_repairs::AttrType::Int)]);
    schema.relation(
        "S",
        &[
            ("x", delta_repairs::AttrType::Int),
            ("y", delta_repairs::AttrType::Int),
        ],
    );
    schema.relation("T", &[("y", delta_repairs::AttrType::Int)]);
    let mut db = Instance::new(schema);
    for &v in r {
        db.insert_values("R", [delta_repairs::Value::Int(v)])
            .unwrap();
    }
    for &(a, b) in s {
        db.insert_values(
            "S",
            [delta_repairs::Value::Int(a), delta_repairs::Value::Int(b)],
        )
        .unwrap();
    }
    for &v in t {
        db.insert_values("T", [delta_repairs::Value::Int(v)])
            .unwrap();
    }
    db
}

fn build_program(mask: u8) -> Program {
    let src: String = RULE_POOL
        .iter()
        .enumerate()
        .filter(|&(i, _)| mask & (1 << i) != 0)
        .map(|(_, r)| format!("{r}\n"))
        .collect();
    parse_program(&src).expect("pool rules are well-formed")
}

prop_compose! {
    fn arb_db()(
        r in prop::collection::btree_set(0i64..6, 0..5),
        s in prop::collection::btree_set((0i64..6, 0i64..6), 0..8),
        t in prop::collection::btree_set(0i64..6, 0..5),
    ) -> Instance {
        build_db(
            &r.into_iter().collect::<Vec<_>>(),
            &s.into_iter().collect::<Vec<_>>(),
            &t.into_iter().collect::<Vec<_>>(),
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// For every random database × rule subset × semantics, the default
    /// (certificate-enabled) request and the opted-out request produce the
    /// same delete-set, and dispatch only ever fires when the session's
    /// certificate covers the semantics.
    #[test]
    fn certificate_dispatch_never_changes_a_delete_set(
        db in arb_db(),
        mask in 1u8..(1 << RULE_POOL.len()),
        sem_idx in 0usize..4,
    ) {
        let semantics = Semantics::ALL[sem_idx];
        let session = RepairSession::new(db, build_program(mask)).expect("valid");
        let genuine = session
            .repair(&RepairRequest::new(semantics).certificates(false))
            .expect("genuine run");
        let certified = session
            .repair(&RepairRequest::new(semantics))
            .expect("certified run");
        prop_assert_eq!(
            genuine.deleted(),
            certified.deleted(),
            "mask {:06b} / {}: dispatch changed the delete-set",
            mask,
            semantics
        );
        let cert = session.certificate();
        let covered = match semantics {
            Semantics::End => false,
            Semantics::Stage => cert.single_stratum || cert.interaction_free,
            Semantics::Step => cert.interaction_free,
            Semantics::Independent => cert.pure_cascade,
        };
        prop_assert_eq!(
            certified.served_via_certificate(),
            covered,
            "mask {:06b} / {}: dispatch disagrees with certificate {:?}",
            mask,
            semantics,
            cert
        );
    }
}

//! Fault-injected crash recovery of the durable [`RepairSession`].
//!
//! The harness runs a mutation script against a store whose IO layer
//! injects one fault (outright failure, torn write, or bit flip) at the
//! Nth operation and then refuses everything — a process that died at that
//! instant. The store is reopened under two crash models:
//!
//! * **power loss** — every byte written since its last fsync vanishes
//!   (`MemIo::lose_unsynced`);
//! * **process kill** — all bytes survive, including the torn or
//!   corrupted tail the dying write left behind.
//!
//! Under the `Always` fsync policy the recovered session must be
//! **bit-identical** (tuple ids, live bitsets, column statistics, epoch,
//! undo history) to the state after the last acknowledged mutation —
//! composite indexes are demand-driven plan caches, verified against the
//! live rows rather than compared (with cost-based planning their *set*
//! depends on when plans were derived); laxer
//! policies may land on any earlier acknowledged state. Corruption beyond
//! the fallback ladder's reach must surface as a typed
//! `StorageError::Corrupt`, never a panic.

use delta_repairs::storage::{
    DiskOptions, Fault, FaultIo, FaultMode, FsyncPolicy, MemIo, StorageIo,
};
use delta_repairs::{
    parse_program, Instance, Program, RepairError, RepairSession, Semantics, StorageError, TupleId,
    Value,
};
use proptest::prelude::*;
use std::path::Path;
use std::sync::Arc;

const DIR: &str = "/store";

fn program() -> Program {
    parse_program(
        "delta R(x) :- R(x), x = 0.\n\
         delta S(x, y) :- S(x, y), delta R(x).\n\
         delta T(y) :- T(y), S(x, y), delta R(x).\n",
    )
    .unwrap()
}

fn build_db(r: &[i64], s: &[(i64, i64)], t: &[i64]) -> Instance {
    let mut schema = delta_repairs::Schema::new();
    schema.relation("R", &[("x", delta_repairs::AttrType::Int)]);
    schema.relation(
        "S",
        &[
            ("x", delta_repairs::AttrType::Int),
            ("y", delta_repairs::AttrType::Int),
        ],
    );
    schema.relation("T", &[("y", delta_repairs::AttrType::Int)]);
    let mut db = Instance::new(schema);
    for &v in r {
        db.insert_values("R", [Value::Int(v)]).unwrap();
    }
    for &(a, b) in s {
        db.insert_values("S", [Value::Int(a), Value::Int(b)])
            .unwrap();
    }
    for &v in t {
        db.insert_values("T", [Value::Int(v)]).unwrap();
    }
    db
}

fn sample_db() -> Instance {
    build_db(&[0, 1, 2], &[(0, 1), (0, 2), (1, 2), (2, 3)], &[1, 2, 3])
}

fn opts(io: Arc<dyn StorageIo>, fsync: FsyncPolicy) -> DiskOptions {
    DiskOptions {
        fsync,
        io,
        checkpoint_every: 0,
    }
}

/// Everything recovery must reproduce exactly.
#[derive(Clone, Debug, PartialEq)]
struct Observed {
    db: Instance,
    epoch: u64,
    history: Vec<(Semantics, Vec<TupleId>)>,
}

fn observe(s: &RepairSession) -> Observed {
    Observed {
        db: s.db().clone(),
        epoch: s.epoch(),
        history: s
            .history()
            .iter()
            .map(|h| (h.semantics, h.deleted.clone()))
            .collect(),
    }
}

/// One deterministic script step. `Ok(true)` = a durable mutation was
/// acknowledged, `Ok(false)` = no-op for the store, `Err` = the injected
/// crash surfaced. Logical no-ops (nothing to delete/undo) are skipped
/// before touching the session so reference and crashed runs stay in
/// lockstep.
fn apply_op(
    session: &mut RepairSession,
    pool: &mut Vec<TupleId>,
    op: u8,
    a: usize,
    b: usize,
) -> Result<bool, RepairError> {
    match op % 6 {
        0 => {
            let rels = ["R", "S", "T"];
            let rel = rels[a % 3];
            let val = |k: usize| Value::Int(((a + k * b) % 9) as i64);
            let rows: Vec<Vec<Value>> = (0..1 + b % 3)
                .map(|k| match rel {
                    "S" => vec![val(k), val(k + 1)],
                    _ => vec![val(k)],
                })
                .collect();
            session.insert_batch(rel, rows)?;
            Ok(true)
        }
        1 => {
            let live: Vec<TupleId> = session.db().all_tuple_ids().collect();
            if live.is_empty() {
                return Ok(false);
            }
            let ids: Vec<TupleId> = (0..1 + b % 3).map(|k| live[(a + k) % live.len()]).collect();
            session.delete_batch(&ids)?;
            pool.extend(ids);
            Ok(true)
        }
        2 => {
            if pool.is_empty() {
                return Ok(false);
            }
            let ids: Vec<TupleId> = (0..1 + b % 2).map(|k| pool[(a + k) % pool.len()]).collect();
            session.restore_batch(&ids)?;
            Ok(true)
        }
        3 => {
            let outcome = session.run(Semantics::End);
            outcome.apply(session)?;
            pool.extend(outcome.deleted().iter().copied());
            Ok(true)
        }
        4 => {
            if session.history().is_empty() {
                return Ok(false);
            }
            session.undo()?;
            Ok(true)
        }
        _ => {
            // Checkpoint: durable but not a mutation — the expected state
            // does not advance.
            session.checkpoint()?;
            Ok(false)
        }
    }
}

type Script = [(u8, usize, usize)];

/// A fault-free run of the script: the acknowledged state after each
/// mutation, whether each script op mutates (ops are deterministic and
/// state-lockstep, so the classification transfers to crashed runs), and
/// the total IO-operation count (= the injection space).
struct Reference {
    states: Vec<Observed>,
    mutating: Vec<bool>,
    total_ops: u64,
}

fn reference_run(db: &Instance, script: &Script) -> Reference {
    let mem = Arc::new(MemIo::new());
    let fio = Arc::new(FaultIo::new(mem, None));
    let mut session = RepairSession::create_durable_with(
        db.clone(),
        program(),
        Path::new(DIR),
        opts(fio.clone(), FsyncPolicy::Always),
    )
    .expect("no fault injected");
    let mut states = vec![observe(&session)];
    let mut mutating = Vec::new();
    let mut pool = Vec::new();
    for &(op, a, b) in script {
        let mutated = apply_op(&mut session, &mut pool, op, a, b).expect("no fault injected");
        mutating.push(mutated);
        if mutated {
            states.push(observe(&session));
        }
    }
    Reference {
        states,
        mutating,
        total_ops: fio.ops_used(),
    }
}

/// Run the script against a store that dies at IO op `at_op`, then crash
/// it under the chosen model. Returns the surviving filesystem, how many
/// mutations were acknowledged, whether the store was even created, and
/// the script index of the op the crash surfaced in (if any).
fn crashed_run(
    db: &Instance,
    script: &Script,
    fsync: FsyncPolicy,
    fault: Fault,
    keep_unsynced: bool,
) -> (Arc<MemIo>, usize, bool, Option<usize>) {
    let mem = Arc::new(MemIo::new());
    let fio = Arc::new(FaultIo::new(mem.clone(), Some(fault)));
    let session =
        RepairSession::create_durable_with(db.clone(), program(), Path::new(DIR), opts(fio, fsync));
    let created = session.is_ok();
    let mut acked = 0;
    let mut errored_at = None;
    if let Ok(mut session) = session {
        let mut pool = Vec::new();
        for (i, &(op, a, b)) in script.iter().enumerate() {
            match apply_op(&mut session, &mut pool, op, a, b) {
                Ok(true) => acked += 1,
                Ok(false) => {}
                Err(_) => {
                    errored_at = Some(i);
                    break;
                }
            }
        }
    }
    if !keep_unsynced {
        mem.lose_unsynced();
    }
    (mem, acked, created, errored_at)
}

fn reopen(mem: Arc<MemIo>) -> Result<RepairSession, RepairError> {
    RepairSession::open_durable_with(Path::new(DIR), program(), opts(mem, FsyncPolicy::Always))
}

fn is_corrupt(e: &RepairError) -> bool {
    matches!(
        e,
        RepairError::Storage {
            source: StorageError::Corrupt { .. },
            ..
        }
    )
}

/// Which acknowledged states a crashed run may legally recover to: the
/// last acknowledged one, plus — only when the crash surfaced inside a
/// *mutating* op — that op's post-state (its WAL record may have hit disk
/// in full before the acknowledgement fsync failed; durable-but-unacked
/// is allowed, lost-after-ack is not).
fn allowed_states(
    reference: &Reference,
    acked: usize,
    errored_at: Option<usize>,
) -> Vec<&Observed> {
    let mut allowed = vec![&reference.states[acked]];
    if errored_at.is_some_and(|i| reference.mutating[i]) {
        allowed.push(&reference.states[acked + 1]);
    }
    allowed
}

/// The core oracle under `Always` fsync. A crash during store *creation*
/// may also leave nothing usable, which must surface as the typed
/// corruption error (creation was never acknowledged).
fn assert_exact_recovery(
    db: &Instance,
    script: &Script,
    reference: &Reference,
    fault: Fault,
    keep_unsynced: bool,
) {
    let (mem, acked, created, errored_at) =
        crashed_run(db, script, FsyncPolicy::Always, fault, keep_unsynced);
    match reopen(mem) {
        Ok(recovered) => {
            assert!(
                recovered.db().indexes_consistent(),
                "{fault:?} keep={keep_unsynced}: recovered indexes desynced"
            );
            let got = observe(&recovered);
            assert!(
                allowed_states(reference, acked, errored_at).contains(&&got),
                "{fault:?} keep={keep_unsynced}: recovered state is neither the \
                 last acknowledged one nor the in-flight op's"
            );
        }
        Err(e) => {
            assert!(
                !created,
                "{fault:?} keep={keep_unsynced}: store was created but reopen failed: {e}"
            );
            assert!(is_corrupt(&e), "{fault:?}: untyped recovery failure: {e}");
        }
    }
}

/// Exhaustive sweep: every IO operation of a fixed mixed script, every
/// fault mode, both crash models.
#[test]
fn every_injection_point_recovers_the_last_acknowledged_state() {
    let db = sample_db();
    // insert, delete, apply, insert, undo, checkpoint, restore, delete,
    // apply, checkpoint, insert — every WAL record kind and a generation
    // roll mid-script.
    let script: Vec<(u8, usize, usize)> = vec![
        (0, 1, 2),
        (1, 0, 1),
        (3, 0, 0),
        (0, 4, 5),
        (4, 0, 0),
        (5, 0, 0),
        (2, 1, 1),
        (1, 2, 2),
        (3, 0, 0),
        (5, 0, 0),
        (0, 7, 1),
    ];
    let reference = reference_run(&db, &script);
    assert!(reference.states.len() > 8, "script must actually mutate");
    for at_op in 1..=reference.total_ops {
        for mode in [FaultMode::Fail, FaultMode::ShortWrite, FaultMode::BitFlip] {
            let fault = Fault { at_op, mode };
            assert_exact_recovery(&db, &script, &reference, fault, false);
            assert_exact_recovery(&db, &script, &reference, fault, true);
        }
    }
    // No fault at all: the full final state round-trips.
    let fault = Fault {
        at_op: reference.total_ops + 1,
        mode: FaultMode::Fail,
    };
    assert_exact_recovery(&db, &script, &reference, fault, true);
}

/// Laxer fsync policies trade the exact guarantee for bounded loss: the
/// recovered state must still be *some* acknowledged prefix state — never
/// a torn or invented one.
#[test]
fn lax_fsync_policies_recover_an_acknowledged_prefix() {
    let db = sample_db();
    let script: Vec<(u8, usize, usize)> = vec![
        (0, 1, 2),
        (1, 0, 1),
        (3, 0, 0),
        (0, 4, 5),
        (4, 0, 0),
        (0, 2, 2),
    ];
    let reference = reference_run(&db, &script);
    for fsync in [FsyncPolicy::EveryN(3), FsyncPolicy::OnCheckpoint] {
        for at_op in (1..=reference.total_ops).step_by(3) {
            for keep in [false, true] {
                let fault = Fault {
                    at_op,
                    mode: FaultMode::ShortWrite,
                };
                let (mem, _, created, _) = crashed_run(&db, &script, fsync, fault, keep);
                match reopen(mem) {
                    Ok(recovered) => {
                        assert!(recovered.db().indexes_consistent());
                        let got = observe(&recovered);
                        assert!(
                            reference.states.contains(&got),
                            "{fsync:?} {fault:?} keep={keep}: recovered a state that \
                             was never acknowledged"
                        );
                    }
                    Err(e) => {
                        assert!(!created, "store created but reopen failed: {e}");
                        assert!(is_corrupt(&e), "untyped failure: {e}");
                    }
                }
            }
        }
    }
}

/// A corrupt newest snapshot degrades to the previous generation (or the
/// WAL chain), reported as a fallback — and when every rung is poisoned
/// the error is typed corruption, not a panic.
#[test]
fn corrupt_snapshots_degrade_gracefully_then_fail_typed() {
    let mem = Arc::new(MemIo::new());
    let mut session = RepairSession::create_durable_with(
        sample_db(),
        program(),
        Path::new(DIR),
        opts(mem.clone(), FsyncPolicy::Always),
    )
    .unwrap();
    session.insert_batch("R", [[Value::Int(7)]]).unwrap();
    session.checkpoint().unwrap(); // snap-1 + wal-1
    session.insert_batch("T", [[Value::Int(8)]]).unwrap();
    let expected = observe(&session);
    drop(session);

    // Rung 1 → rung 1': flip one byte of the newest snapshot. Recovery
    // must fall back to snap-0 and replay the wal-0 → wal-1 chain to the
    // exact same state.
    let snap1 = Path::new(DIR).join("snap-1.drs");
    let clean = mem.contents(&snap1).unwrap();
    let mut bad = clean.clone();
    bad[20] ^= 0x40;
    mem.corrupt(&snap1, bad);
    let recovered = reopen(mem.clone()).unwrap();
    assert_eq!(observe(&recovered), expected);
    let report = recovered.recovery_report().unwrap().clone();
    assert!(report.degraded(), "fallback must be reported");
    assert_eq!(report.snapshot_gen, Some(0));
    assert!(
        report
            .fallbacks
            .iter()
            .any(|f| f.contains("snapshot gen 1")),
        "{:?}",
        report.fallbacks
    );
    drop(recovered);

    // Poison every snapshot: the base was non-empty, so a WAL-only replay
    // is impossible and the ladder must fail with typed corruption.
    let snap0 = Path::new(DIR).join("snap-0.drs");
    let mut bad0 = mem.contents(&snap0).unwrap();
    bad0[20] ^= 0x40;
    mem.corrupt(&snap0, bad0);
    let err = reopen(mem).unwrap_err();
    assert!(is_corrupt(&err), "{err}");
    assert!(err.to_string().contains("corrupt store file"), "{err}");
}

/// Garbage appended to the live WAL (a torn tail the crash left behind)
/// is measured, truncated, and gone for good: the next open is clean.
#[test]
fn torn_wal_tails_are_truncated_once() {
    let mem = Arc::new(MemIo::new());
    let mut session = RepairSession::create_durable_with(
        sample_db(),
        program(),
        Path::new(DIR),
        opts(mem.clone(), FsyncPolicy::Always),
    )
    .unwrap();
    session.insert_batch("R", [[Value::Int(7)]]).unwrap();
    let expected = observe(&session);
    drop(session);

    let wal0 = Path::new(DIR).join("wal-0.drw");
    let mut torn = mem.contents(&wal0).unwrap();
    torn.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0x01]);
    mem.corrupt(&wal0, torn);

    let recovered = reopen(mem.clone()).unwrap();
    assert_eq!(observe(&recovered), expected);
    assert_eq!(recovered.recovery_report().unwrap().truncated_bytes, 5);
    drop(recovered);

    let clean = reopen(mem).unwrap();
    assert_eq!(observe(&clean), expected);
    assert_eq!(clean.recovery_report().unwrap().truncated_bytes, 0);
    assert!(!clean.recovery_report().unwrap().degraded());
}

prop_compose! {
    fn arb_db()(
        r in prop::collection::btree_set(0i64..5, 0..4),
        s in prop::collection::btree_set((0i64..5, 0i64..5), 0..6),
        t in prop::collection::btree_set(0i64..5, 0..4),
    ) -> Instance {
        build_db(
            &r.into_iter().collect::<Vec<_>>(),
            &s.into_iter().collect::<Vec<_>>(),
            &t.into_iter().collect::<Vec<_>>(),
        )
    }
}

fn mode_from(sel: u8) -> FaultMode {
    match sel % 3 {
        0 => FaultMode::Fail,
        1 => FaultMode::ShortWrite,
        _ => FaultMode::BitFlip,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random databases × random mutation interleavings × a random
    /// injection point and fault mode, both crash models: recovery is
    /// exact under `Always` fsync.
    #[test]
    fn random_interleavings_recover_exactly(
        db in arb_db(),
        script in prop::collection::vec((0u8..6, 0usize..64, 0usize..64), 1..10),
        at_op in 1u64..120,
        mode_sel in 0u8..3,
        keep in any::<bool>(),
    ) {
        let reference = reference_run(&db, &script);
        let fault = Fault { at_op: at_op.min(reference.total_ops + 1), mode: mode_from(mode_sel) };
        let (mem, acked, created, errored_at) =
            crashed_run(&db, &script, FsyncPolicy::Always, fault, keep);
        match reopen(mem) {
            Ok(recovered) => {
                prop_assert!(recovered.db().indexes_consistent());
                let got = observe(&recovered);
                prop_assert!(
                    allowed_states(&reference, acked, errored_at).contains(&&got),
                    "{fault:?} keep={keep}: unacknowledged recovered state"
                );
                // And the recovered session still answers repairs exactly
                // like a fresh in-memory session over the same database.
                let fresh =
                    RepairSession::new(got.db.clone(), program()).unwrap();
                prop_assert_eq!(
                    recovered.run(Semantics::End).deleted(),
                    fresh.run(Semantics::End).deleted()
                );
            }
            Err(e) => {
                prop_assert!(!created, "store created but reopen failed: {e}");
                prop_assert!(is_corrupt(&e), "untyped failure: {e}");
            }
        }
    }
}

//! Engine parity: the unified `engine::FixpointDriver` must reproduce the
//! seed implementation's behaviour *exactly* — same deleted sets, same
//! layer assignments, same assignment streams, same round counts — for
//! end, stage and stability, across the running example, workload samples
//! and recursive programs.
//!
//! The `reference` module below is a line-for-line copy of the seed's
//! hand-rolled fixpoint loops (pre-refactor `end.rs` / `stage.rs` /
//! `stability.rs`), kept here as the executable specification the engine
//! is judged against.

use delta_repairs::datalog::{Assignment, DeltaFrontier, Evaluator, Mode};
use delta_repairs::{parse_program, testkit, Instance, RepairSession, TupleId};
use std::collections::HashMap;

/// The seed's fixpoint loops, verbatim.
mod reference {
    use super::*;

    pub struct EndOutcome {
        pub deleted: Vec<TupleId>,
        pub assignments: Vec<Assignment>,
        pub layers: HashMap<TupleId, u32>,
        pub rounds: u32,
    }

    /// Pre-refactor `end::run`.
    pub fn end_run(db: &Instance, ev: &Evaluator) -> EndOutcome {
        let mut state = db.initial_state();
        let mut assignments: Vec<Assignment> = Vec::new();
        let mut layers: HashMap<TupleId, u32> = HashMap::new();

        let mut new_heads: Vec<TupleId> = Vec::new();
        ev.for_each_base_rule_assignment(db, &state, Mode::FrozenBase, &mut |a| {
            if !state.in_delta(a.head) && !new_heads.contains(&a.head) {
                new_heads.push(a.head);
            }
            assignments.push(a.clone());
            true
        });

        let mut round = 1u32;
        while !new_heads.is_empty() {
            let mut frontier = DeltaFrontier::empty(db);
            for &t in &new_heads {
                if state.mark_delta(t) {
                    layers.insert(t, round);
                    frontier.insert(t);
                }
            }
            round += 1;
            let mut next: Vec<TupleId> = Vec::new();
            ev.for_each_frontier_assignment(db, &state, Mode::FrozenBase, &frontier, &mut |a| {
                if !state.in_delta(a.head) && !next.contains(&a.head) {
                    next.push(a.head);
                }
                assignments.push(a.clone());
                true
            });
            new_heads = next;
        }

        state.apply_deltas();
        EndOutcome {
            deleted: state.all_delta_rows(),
            assignments,
            layers,
            rounds: round,
        }
    }

    /// Pre-refactor `end::run_naive`.
    pub fn end_run_naive(db: &Instance, ev: &Evaluator) -> EndOutcome {
        let mut state = db.initial_state();
        let mut layers: HashMap<TupleId, u32> = HashMap::new();
        let mut round = 0u32;
        let mut assignments: Vec<Assignment> = Vec::new();
        loop {
            round += 1;
            let mut new_heads: Vec<TupleId> = Vec::new();
            assignments.clear();
            ev.for_each_assignment(db, &state, Mode::FrozenBase, &mut |a| {
                if !state.in_delta(a.head) && !new_heads.contains(&a.head) {
                    new_heads.push(a.head);
                }
                assignments.push(a.clone());
                true
            });
            if new_heads.is_empty() {
                break;
            }
            for t in new_heads {
                state.mark_delta(t);
                layers.insert(t, round);
            }
        }
        state.apply_deltas();
        EndOutcome {
            deleted: state.all_delta_rows(),
            assignments,
            layers,
            rounds: round,
        }
    }

    /// Pre-refactor `stage::run`.
    pub fn stage_run(db: &Instance, ev: &Evaluator) -> (Vec<TupleId>, u32) {
        let mut state = db.initial_state();
        let mut stages = 0u32;
        loop {
            let mut new_heads: Vec<TupleId> = Vec::new();
            ev.for_each_assignment(db, &state, Mode::Current, &mut |a| {
                if state.is_present(a.head) && !new_heads.contains(&a.head) {
                    new_heads.push(a.head);
                }
                true
            });
            if new_heads.is_empty() {
                break;
            }
            for t in new_heads {
                state.delete(t);
            }
            stages += 1;
        }
        (state.all_delta_rows(), stages)
    }

    /// Pre-refactor `stability::is_stabilizing` (via `Evaluator::is_stable`).
    pub fn is_stabilizing(db: &Instance, ev: &Evaluator, deleted: &[TupleId]) -> bool {
        let mut state = db.initial_state();
        for &t in deleted {
            state.delete(t);
        }
        ev.is_stable(db, &state)
    }
}

/// Assert full end/stage/stability parity between engine-backed modules and
/// the reference loops, for one session.
fn assert_parity(label: &str, session: &RepairSession) {
    let (db, ev) = (session.db(), session.evaluator());

    let new_end = delta_repairs::end::run(db, ev);
    let ref_end = reference::end_run(db, ev);
    assert_eq!(new_end.deleted, ref_end.deleted, "{label}: end deleted set");
    assert_eq!(new_end.layers, ref_end.layers, "{label}: end layers");
    assert_eq!(new_end.rounds, ref_end.rounds, "{label}: end rounds");
    assert_eq!(
        new_end.assignments, ref_end.assignments,
        "{label}: end assignment stream (provenance input)"
    );

    // Morsel-parallel parity: explicit thread counts must reproduce the
    // reference bit for bit — stream, layers and round counts included.
    // (On serial builds the knob is inert; the assertions then pin that it
    // at least changes nothing.)
    for threads in [1usize, 2, 4] {
        let t = Some(threads);
        let par_end = delta_repairs::end::run_threads(db, ev, t);
        assert_eq!(
            par_end.deleted, ref_end.deleted,
            "{label}: end deleted set at {threads} threads"
        );
        assert_eq!(
            par_end.assignments, ref_end.assignments,
            "{label}: end assignment stream at {threads} threads"
        );
        assert_eq!(
            par_end.layers, ref_end.layers,
            "{label}: end layers at {threads} threads"
        );
        assert_eq!(
            par_end.rounds, ref_end.rounds,
            "{label}: end rounds at {threads} threads"
        );
        let par_stage = delta_repairs::stage::run_threads(db, ev, t);
        let (ref_stage_deleted, ref_stage_count) = reference::stage_run(db, ev);
        assert_eq!(
            par_stage.deleted, ref_stage_deleted,
            "{label}: stage deleted set at {threads} threads"
        );
        assert_eq!(
            par_stage.stages, ref_stage_count,
            "{label}: stage count at {threads} threads"
        );
    }

    let new_naive = delta_repairs::end::run_naive(db, ev);
    let ref_naive = reference::end_run_naive(db, ev);
    assert_eq!(
        new_naive.deleted, ref_naive.deleted,
        "{label}: naive deleted"
    );
    assert_eq!(new_naive.layers, ref_naive.layers, "{label}: naive layers");
    assert_eq!(new_naive.rounds, ref_naive.rounds, "{label}: naive rounds");
    assert_eq!(
        new_naive.assignments, ref_naive.assignments,
        "{label}: naive final-round assignment stream"
    );

    let new_stage = delta_repairs::stage::run(db, ev);
    let (ref_deleted, ref_stages) = reference::stage_run(db, ev);
    assert_eq!(new_stage.deleted, ref_deleted, "{label}: stage deleted set");
    assert_eq!(new_stage.stages, ref_stages, "{label}: stage count");

    // Stability must agree on: the empty set, each semantics' result, and
    // every proper prefix of the end result (a mix of stabilizing and
    // non-stabilizing candidates).
    let candidates: Vec<Vec<TupleId>> = std::iter::once(Vec::new())
        .chain((0..new_end.deleted.len()).map(|k| new_end.deleted[..k].to_vec()))
        .chain([new_end.deleted.clone(), new_stage.deleted.clone()])
        .collect();
    for cand in &candidates {
        assert_eq!(
            delta_repairs::stability::is_stabilizing(db, ev, cand),
            reference::is_stabilizing(db, ev, cand),
            "{label}: stability verdict for {cand:?}"
        );
    }
}

#[test]
fn figure1_parity() {
    let session =
        RepairSession::new(testkit::figure1_instance(), testkit::figure2_program()).unwrap();
    assert_parity("figure1", &session);
}

#[test]
fn mas_workload_parity() {
    let data =
        delta_repairs::datagen::mas::generate(&delta_repairs::datagen::MasConfig::scaled(0.02));
    for w in delta_repairs::workloads::mas_programs(&data) {
        let session = RepairSession::new(data.db.clone(), w.program.clone()).unwrap();
        assert_parity(&w.name, &session);
    }
}

#[test]
fn tpch_workload_parity() {
    let data =
        delta_repairs::datagen::tpch::generate(&delta_repairs::datagen::TpchConfig::scaled(0.01));
    for w in delta_repairs::workloads::tpch_programs(&data) {
        let session = RepairSession::new(data.db.clone(), w.program.clone()).unwrap();
        assert_parity(&w.name, &session);
    }
}

#[test]
fn recursive_program_parity() {
    // The recursive chain of tests/recursion.rs, at several lengths.
    for n in [3i64, 6, 12] {
        let mut s = delta_repairs::Schema::new();
        s.relation("Node", &[("v", delta_repairs::AttrType::Int)]);
        s.relation(
            "Edge",
            &[
                ("u", delta_repairs::AttrType::Int),
                ("v", delta_repairs::AttrType::Int),
            ],
        );
        let mut db = Instance::new(s);
        for v in 0..n {
            db.insert_values("Node", [delta_repairs::Value::Int(v)])
                .unwrap();
        }
        for v in 0..n - 1 {
            db.insert_values(
                "Edge",
                [
                    delta_repairs::Value::Int(v),
                    delta_repairs::Value::Int(v + 1),
                ],
            )
            .unwrap();
        }
        let program = parse_program(
            "delta Node(v) :- Node(v), v = 0.
             delta Node(v) :- Node(v), Edge(u, v), delta Node(u).",
        )
        .unwrap();
        let session = RepairSession::new(db, program).unwrap();
        assert_parity(&format!("chain-{n}"), &session);
    }

    // The mutual recursion of tests/recursion.rs.
    let mut s = delta_repairs::Schema::new();
    s.relation("A", &[("x", delta_repairs::AttrType::Int)]);
    s.relation("B", &[("x", delta_repairs::AttrType::Int)]);
    let mut db = Instance::new(s);
    for x in 0..6i64 {
        db.insert_values("A", [delta_repairs::Value::Int(x)])
            .unwrap();
        db.insert_values("B", [delta_repairs::Value::Int(x)])
            .unwrap();
    }
    let program = parse_program(
        "delta A(x) :- A(x), x = 0.
         delta B(x) :- B(x), delta A(x).
         delta A(x) :- A(x), delta B(x).",
    )
    .unwrap();
    let session = RepairSession::new(db, program).unwrap();
    assert_parity("mutual-recursion", &session);
}

#[test]
fn empty_program_parity() {
    let session = RepairSession::new(
        testkit::figure1_instance(),
        delta_repairs::Program::default(),
    )
    .unwrap();
    assert_parity("empty-program", &session);
}

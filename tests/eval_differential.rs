//! Differential testing of the planned + composite-indexed evaluator.
//!
//! `tests/engine_parity.rs` pins the fixpoint *drivers* against the seed
//! loops on fixed workloads; this suite pins the *join core* itself against
//! a naive reference on randomized inputs. Random small programs and
//! instances run through both:
//!
//! * the production [`Evaluator`] — precompiled probe specs, composite
//!   hash indexes, scratch-buffer reuse;
//! * a brute-force reference that walks the same compiled plan order but
//!   enumerates every row of every relation, re-checks every slot with a
//!   hash-map environment, and evaluates all comparisons only at the leaf.
//!
//! Both must produce **identical assignment streams — order included** —
//! under all three modes and randomized deletion/delta states. The plan
//! order is shared on purpose: index probes, residual filters and early
//! comparison scheduling must only *skip* non-matching candidates, never
//! reorder or duplicate survivors; enumeration order is ascending row
//! order at every plan step regardless of access path.

use delta_repairs::datalog::compile::{CompiledRule, Slot};
use delta_repairs::datalog::{parse_program, Assignment, BodyBind, Evaluator, Mode, Program};
use delta_repairs::{AttrType, Instance, Schema, State, TupleId, Value};
use proptest::prelude::*;
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Random schema instances, programs and states.
// ---------------------------------------------------------------------------

/// Fixed test schema: small arities, mixed column types, enough relations
/// for joins and deltas to collide on shared variables.
fn schema() -> Schema {
    let mut s = Schema::new();
    s.relation("R0", &[("a", AttrType::Int)]);
    s.relation("R1", &[("a", AttrType::Int), ("b", AttrType::Int)]);
    s.relation("R2", &[("a", AttrType::Int), ("s", AttrType::Str)]);
    s
}

const REL_NAMES: [&str; 3] = ["R0", "R1", "R2"];
const REL_ARITIES: [usize; 3] = [1, 2, 2];
/// Column types per relation: `true` = Int, `false` = Str.
const REL_INT_COLS: [&[bool]; 3] = [&[true], &[true, true], &[true, false]];
const STRINGS: [&str; 3] = ["x", "y", "z"];
/// Small value domain so joins actually match and tuples collide.
const DOMAIN: i64 = 5;

fn value_for(col_is_int: bool, raw: u64) -> Value {
    if col_is_int {
        Value::Int((raw % DOMAIN as u64) as i64)
    } else {
        Value::str(STRINGS[raw as usize % STRINGS.len()])
    }
}

fn term_src(col_is_int: bool, choice: u64) -> String {
    // 0..6 → variable from a small pool (shared across atoms so joins
    // happen), 6..8 → constant.
    if choice < 6 {
        format!("v{}", choice % 4)
    } else if col_is_int {
        format!("{}", choice % DOMAIN as u64)
    } else {
        format!("'{}'", STRINGS[choice as usize % STRINGS.len()])
    }
}

/// One random rule in concrete syntax. The head witness is body atom 0 by
/// construction (same relation, same terms, positive), which also
/// guarantees safety of head variables.
fn rule_src(
    rel: usize,
    term_choices: &[u64],
    extra: &[(usize, bool, Vec<u64>)],
    cmps: &[(u64, u64, u64)],
) -> String {
    let head_terms: Vec<String> = (0..REL_ARITIES[rel])
        .map(|c| term_src(REL_INT_COLS[rel][c], term_choices[c]))
        .collect();
    let head = format!("{}({})", REL_NAMES[rel], head_terms.join(", "));
    let mut body = vec![head.clone()];
    let mut vars_in_body: Vec<String> = head_terms
        .iter()
        .filter(|t| t.starts_with('v'))
        .cloned()
        .collect();
    for (erel, is_delta, choices) in extra {
        let terms: Vec<String> = (0..REL_ARITIES[*erel])
            .map(|c| term_src(REL_INT_COLS[*erel][c], choices[c]))
            .collect();
        vars_in_body.extend(terms.iter().filter(|t| t.starts_with('v')).cloned());
        let prefix = if *is_delta { "delta " } else { "" };
        body.push(format!(
            "{prefix}{}({})",
            REL_NAMES[*erel],
            terms.join(", ")
        ));
    }
    // Comparisons only over variables already in the body (safety), or
    // integer constants.
    const OPS: [&str; 6] = ["=", "!=", "<", "<=", ">", ">="];
    for &(lhs, op, rhs) in cmps {
        if vars_in_body.is_empty() {
            break;
        }
        let side = |choice: u64| {
            if choice.is_multiple_of(3) {
                format!("{}", choice % DOMAIN as u64)
            } else {
                vars_in_body[choice as usize % vars_in_body.len()].clone()
            }
        };
        body.push(format!(
            "{} {} {}",
            side(lhs),
            OPS[op as usize % OPS.len()],
            side(rhs)
        ));
    }
    format!("delta {head} :- {}.", body.join(", "))
}

prop_compose! {
    fn arb_rule()(
        rel in 0usize..3,
        term_choices in prop::collection::vec(0u64..8, 2),
        extra in prop::collection::vec(
            (0usize..3, any::<bool>(), prop::collection::vec(0u64..8, 2)),
            0..3,
        ),
        cmps in prop::collection::vec((0u64..12, 0u64..6, 0u64..12), 0..2),
    ) -> String {
        rule_src(rel, &term_choices, &extra, &cmps)
    }
}

prop_compose! {
    fn arb_program()(rules in prop::collection::vec(arb_rule(), 1..4)) -> Program {
        parse_program(&rules.join("\n")).expect("generated rules parse")
    }
}

prop_compose! {
    /// Tuples per relation, as raw column draws.
    fn arb_tuples()(
        r0 in prop::collection::vec(prop::collection::vec(0u64..32, 1), 0..8),
        r1 in prop::collection::vec(prop::collection::vec(0u64..32, 2), 0..10),
        r2 in prop::collection::vec(prop::collection::vec(0u64..32, 2), 0..8),
    ) -> [Vec<Vec<u64>>; 3] {
        [r0, r1, r2]
    }
}

fn build_instance(tuples: &[Vec<Vec<u64>>; 3]) -> Instance {
    let mut db = Instance::new(schema());
    for (rel, rows) in tuples.iter().enumerate() {
        for raw in rows {
            let vals: Vec<Value> = raw
                .iter()
                .enumerate()
                .map(|(c, &r)| value_for(REL_INT_COLS[rel][c], r))
                .collect();
            db.insert_values(REL_NAMES[rel], vals).expect("typed row");
        }
    }
    db
}

/// Random state: per tuple, 0 = untouched, 1 = deleted (gone from `R`, in
/// `Δ`), 2 = delta-marked (still in `R`, in `Δ` — the end-semantics shape).
fn build_state(db: &Instance, ops: &[u64]) -> State {
    let mut state = db.initial_state();
    for (i, tid) in db.all_tuple_ids().enumerate() {
        match ops.get(i).copied().unwrap_or(0) % 4 {
            1 => {
                state.delete(tid);
            }
            2 => {
                state.mark_delta(tid);
            }
            _ => {}
        }
    }
    state
}

// ---------------------------------------------------------------------------
// The naive reference evaluator.
// ---------------------------------------------------------------------------

fn admitted_ref(state: &State, mode: Mode, is_delta: bool, tid: TupleId) -> bool {
    if is_delta {
        match mode {
            Mode::Hypothetical => true,
            Mode::Current | Mode::FrozenBase => state.in_delta(tid),
        }
    } else {
        match mode {
            Mode::Current => state.is_present(tid),
            Mode::FrozenBase | Mode::Hypothetical => true,
        }
    }
}

/// Enumerate one rule's assignments by scanning every row of every atom's
/// relation, in the compiled plan order, with nothing precomputed: slots
/// are matched against a `HashMap` environment and every comparison is
/// checked only once all atoms are bound.
fn reference_rule(
    db: &Instance,
    state: &State,
    mode: Mode,
    rule_idx: usize,
    cr: &CompiledRule,
    out: &mut Vec<Assignment>,
) {
    #[allow(clippy::too_many_arguments)]
    fn rec(
        db: &Instance,
        state: &State,
        mode: Mode,
        rule_idx: usize,
        cr: &CompiledRule,
        order: &[usize],
        k: usize,
        env: &mut HashMap<u32, Value>,
        chosen: &mut Vec<Option<TupleId>>,
        out: &mut Vec<Assignment>,
    ) {
        if k == order.len() {
            let all_cmps_hold = cr.cmps.iter().all(|c| {
                let get = |s: &Slot| match s {
                    Slot::Const(v) => *v,
                    Slot::Var(x) => env[x],
                };
                c.op.eval(&get(&c.lhs), &get(&c.rhs))
            });
            if all_cmps_hold {
                out.push(Assignment {
                    rule: rule_idx,
                    head: chosen[cr.head_witness].expect("witness bound"),
                    body: cr
                        .atoms
                        .iter()
                        .enumerate()
                        .map(|(i, a)| BodyBind {
                            tid: chosen[i].expect("bound"),
                            is_delta: a.is_delta,
                        })
                        .collect(),
                });
            }
            return;
        }
        let ai = order[k];
        let atom = &cr.atoms[ai];
        let rel = db.relation(atom.rel);
        for row in 0..rel.num_rows() as u32 {
            let tid = TupleId::new(atom.rel, row);
            if !admitted_ref(state, mode, atom.is_delta, tid) {
                continue;
            }
            let tuple = rel.tuple(row);
            let mut bound_here: Vec<u32> = Vec::new();
            let mut ok = true;
            for (col, slot) in atom.slots.iter().enumerate() {
                let val = tuple.get(col);
                match slot {
                    Slot::Const(c) => {
                        if c != val {
                            ok = false;
                            break;
                        }
                    }
                    Slot::Var(x) => match env.get(x) {
                        Some(b) => {
                            if b != val {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            env.insert(*x, *val);
                            bound_here.push(*x);
                        }
                    },
                }
            }
            if ok {
                chosen[ai] = Some(tid);
                rec(
                    db,
                    state,
                    mode,
                    rule_idx,
                    cr,
                    order,
                    k + 1,
                    env,
                    chosen,
                    out,
                );
                chosen[ai] = None;
            }
            for x in bound_here {
                env.remove(&x);
            }
        }
    }

    // Mirror the engine's mode-based plan selection: hypothetical mode
    // runs the rule's hypothetical sibling plan, everything else the
    // general plan.
    let order = match mode {
        Mode::Hypothetical => &cr.hypothetical.order,
        Mode::Current | Mode::FrozenBase => &cr.general.order,
    };
    let mut env: HashMap<u32, Value> = HashMap::new();
    let mut chosen: Vec<Option<TupleId>> = vec![None; cr.atoms.len()];
    rec(
        db,
        state,
        mode,
        rule_idx,
        cr,
        order,
        0,
        &mut env,
        &mut chosen,
        out,
    );
}

/// The reference walks the *evaluator's* compiled rules, so it follows
/// whatever join order the planning strategy chose (static textual or
/// cost-based) — by design the two sides share the order and differ only
/// in access paths.
fn reference_assignments(
    db: &Instance,
    state: &State,
    mode: Mode,
    ev: &Evaluator,
) -> Vec<Assignment> {
    let mut out = Vec::new();
    for ri in 0..ev.num_rules() {
        reference_rule(db, state, mode, ri, ev.compiled_rule(ri), &mut out);
    }
    out
}

fn engine_assignments(ev: &Evaluator, db: &Instance, state: &State, mode: Mode) -> Vec<Assignment> {
    let mut out = Vec::new();
    ev.for_each_assignment(db, state, mode, &mut |a| {
        out.push(a.clone());
        true
    });
    out
}

// ---------------------------------------------------------------------------
// Properties.
// ---------------------------------------------------------------------------

static TOTAL_ASSIGNMENTS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
static CASES_RUN: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// The planned, indexed, scratch-reusing evaluator and the naive
    /// full-scan reference produce identical assignment streams — order
    /// included — under every mode and random states.
    #[test]
    fn planned_evaluator_matches_naive_reference(
        program in arb_program(),
        tuples in arb_tuples(),
        state_ops in prop::collection::vec(0u64..4, 0..26),
    ) {
        let mut db = build_instance(&tuples);
        let ev = match Evaluator::new(&mut db, program.clone()) {
            Ok(ev) => ev,
            // Generated rules are valid by construction; a rejection here
            // would itself be a bug worth seeing.
            Err(e) => panic!("generated program rejected: {e}"),
        };
        // A second evaluator pinned to the static textual planner: the two
        // strategies order joins differently but must enumerate the same
        // assignment *set* for every rule under every mode.
        let ev_static = Evaluator::new_static(&mut db, program)
            .expect("valid by construction");
        let state = build_state(&db, &state_ops);
        for mode in [Mode::Current, Mode::FrozenBase, Mode::Hypothetical] {
            let fast = engine_assignments(&ev, &db, &state, mode);
            let slow = reference_assignments(&db, &state, mode, &ev);
            TOTAL_ASSIGNMENTS.fetch_add(fast.len(), std::sync::atomic::Ordering::Relaxed);
            prop_assert_eq!(
                &fast, &slow,
                "assignment streams diverge under {:?}", mode
            );
            let static_ref = reference_assignments(&db, &state, mode, &ev_static);
            prop_assert_eq!(
                engine_assignments(&ev_static, &db, &state, mode),
                static_ref.clone(),
                "static-plan streams diverge under {:?}", mode
            );
            let sorted_set = |v: &[Assignment]| {
                let mut keys: Vec<(usize, Vec<TupleId>)> = v
                    .iter()
                    .map(|a| (a.rule, a.body.iter().map(|b| b.tid).collect()))
                    .collect();
                keys.sort();
                keys
            };
            prop_assert_eq!(
                sorted_set(&fast),
                sorted_set(&static_ref),
                "cost-based and static plans enumerate different sets under {:?}", mode
            );
        }
        // Guard against a vacuous generator: across the whole run plenty of
        // cases must produce real assignments (checked after many cases so
        // early sparse draws don't trip it).
        let cases = CASES_RUN.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
        if cases == 100 {
            let total = TOTAL_ASSIGNMENTS.load(std::sync::atomic::Ordering::Relaxed);
            prop_assert!(
                total > 500,
                "differential suite is near-vacuous: {total} assignments in {cases} cases"
            );
        }
    }

    /// One shared scratch across repeated runs never leaks state between
    /// enumerations: re-running yields the identical stream.
    #[test]
    fn scratch_reuse_is_stateless(
        program in arb_program(),
        tuples in arb_tuples(),
    ) {
        let mut db = build_instance(&tuples);
        let ev = Evaluator::new(&mut db, program).expect("valid by construction");
        let state = db.initial_state();
        let mut scratch = delta_repairs::datalog::EvalScratch::new();
        let mut runs: Vec<Vec<Assignment>> = Vec::new();
        for _ in 0..2 {
            for mode in [Mode::Hypothetical, Mode::Current] {
                let mut got = Vec::new();
                ev.for_each_assignment_with(&db, &state, mode, &mut scratch, &mut |a| {
                    got.push(a.clone());
                    true
                });
                runs.push(got);
            }
        }
        prop_assert_eq!(&runs[0], &runs[2]);
        prop_assert_eq!(&runs[1], &runs[3]);
    }
}

// The morsel-parallel collector must reproduce the serial callback stream
// — order included — at every thread count, under every mode, on the same
// randomized programs/instances/states as the serial differential above.
#[cfg(feature = "parallel")]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    #[test]
    fn par_collect_matches_serial_stream(
        program in arb_program(),
        tuples in arb_tuples(),
        state_ops in prop::collection::vec(0u64..4, 0..26),
        threads in 2usize..=8,
    ) {
        let mut db = build_instance(&tuples);
        let ev = Evaluator::new(&mut db, program).expect("valid by construction");
        let state = build_state(&db, &state_ops);
        for mode in [Mode::Current, Mode::FrozenBase, Mode::Hypothetical] {
            let serial = engine_assignments(&ev, &db, &state, mode);
            let par = ev.par_collect(
                &db,
                &state,
                mode,
                delta_repairs::datalog::ParScope::All,
                threads,
            );
            prop_assert_eq!(
                &par, &serial,
                "parallel stream diverged under {:?} at {} threads", mode, threads
            );
        }
    }
}

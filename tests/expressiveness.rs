//! Section 3.6's expressiveness claims, executed: denial constraints and
//! interventions compile to delta programs with the promised behaviour
//! under each semantics.

use delta_repairs::{
    testkit, with_interventions, AttrType, DenialConstraint, Instance, Program, RepairSession,
    Schema, Semantics, Value,
};

fn pub_db() -> Instance {
    let mut s = Schema::new();
    s.relation(
        "Pub",
        &[
            ("pid", AttrType::Int),
            ("title", AttrType::Str),
            ("conf", AttrType::Str),
        ],
    );
    let mut db = Instance::new(s);
    // Two violating pairs sharing a middle element: (1,2), (2,3) both have
    // title X; 4 is clean.
    db.insert_values("Pub", [Value::Int(1), Value::str("X"), Value::str("A")])
        .unwrap();
    db.insert_values("Pub", [Value::Int(2), Value::str("X"), Value::str("B")])
        .unwrap();
    db.insert_values("Pub", [Value::Int(3), Value::str("X"), Value::str("C")])
        .unwrap();
    db.insert_values("Pub", [Value::Int(4), Value::str("Y"), Value::str("A")])
        .unwrap();
    db
}

fn title_dc() -> DenialConstraint {
    DenialConstraint::parse(":- Pub(p1, t, c1), Pub(p2, t, c2), c1 != c2.").expect("DC parses")
}

/// Independent semantics + the single-rule translation = the classic
/// minimum DC repair: delete the fewest tuples so no violating pair
/// remains (here: any 2 of the 3 X-titled pubs).
#[test]
fn independent_gives_minimum_dc_repair() {
    let session = RepairSession::new(pub_db(), title_dc().to_program_single(0)).unwrap();
    let ind = session.run(Semantics::Independent);
    assert_eq!(
        ind.size(),
        2,
        "three mutually-violating pubs need two deletions"
    );
    assert!(session.verify_stabilizing(ind.deleted()));
    // The clean publication is never touched.
    let clean = testkit::tid_of(session.db(), "Pub(4, Y, A)");
    assert!(!ind.contains(clean));
}

/// The per-atom translation gives step semantics the same freedom — and
/// the same minimum here.
#[test]
fn per_atom_translation_lets_step_match_independent() {
    let session = RepairSession::new(pub_db(), title_dc().to_program_per_atom()).unwrap();
    let step = session.run(Semantics::Step);
    let ind = session.run(Semantics::Independent);
    assert_eq!(step.size(), 2);
    assert_eq!(ind.size(), 2);
    assert!(session.verify_stabilizing(step.deleted()));
}

/// End semantics over the same translation deletes every violating tuple —
/// the over-deletion the paper contrasts against.
#[test]
fn end_deletes_every_violating_tuple() {
    let session = RepairSession::new(pub_db(), title_dc().to_program_per_atom()).unwrap();
    let end = session.run(Semantics::End);
    assert_eq!(end.size(), 3, "all three X-titled pubs violate pairwise");
}

/// compile_all combines several DCs into one program and repairs still
/// stabilize.
#[test]
fn multiple_dcs_compile_together() {
    let dup_pid = DenialConstraint::parse(":- Pub(p, t1, c1), Pub(p, t2, c2), t1 != t2.").unwrap();
    let program = DenialConstraint::compile_all(&[title_dc(), dup_pid]);
    assert_eq!(program.len(), 4);
    let mut db = pub_db();
    db.insert_values("Pub", [Value::Int(1), Value::str("Z"), Value::str("A")])
        .unwrap();
    let session = RepairSession::new(db, program).unwrap();
    for sem in Semantics::ALL {
        let r = session.run(sem);
        assert!(session.verify_stabilizing(r.deleted()), "{sem}");
    }
}

/// Interventions: a stable database, a cascade program, and a user-chosen
/// deletion — the Figure 2 rule-(0) pattern built programmatically.
#[test]
fn interventions_seed_the_cascade() {
    let db = testkit::figure1_instance();
    // Figure 2 without rule (0): stable on its own.
    let cascade: Program = delta_repairs::parse_program(
        "delta Author(a, n) :- Author(a, n), AuthGrant(a, g), delta Grant(g, gn).
         delta Pub(p, t) :- Pub(p, t), Writes(a, p), delta Author(a, n).
         delta Writes(a, p) :- Pub(p, t), Writes(a, p), delta Author(a, n).
         delta Cite(c, p) :- Cite(c, p), delta Pub(p, t), Writes(a1, c), Writes(a2, p).",
    )
    .unwrap();
    {
        let unseeded = RepairSession::new(db.clone(), cascade.clone()).unwrap();
        assert!(unseeded.is_stable(), "no seed, no deletions");
    }
    // Intervene on the ERC grant: identical to the full Figure 2 program.
    let erc = testkit::tid_of(&db, "Grant(2, ERC)");
    let seeded = with_interventions(&cascade, &db, &[erc]);
    let session = RepairSession::new(db.clone(), seeded).unwrap();
    let end = session.run(Semantics::End);
    assert_eq!(end.size(), 8, "matches the Figure 2 end result");

    let full = RepairSession::new(db, testkit::figure2_program()).unwrap();
    let reference = full.run(Semantics::End);
    assert!(delta_repairs::relationships::set_eq(
        end.deleted(),
        reference.deleted()
    ));
}

/// Intervening on several tuples at once.
#[test]
fn multi_tuple_intervention() {
    let db = testkit::figure1_instance();
    let cascade = delta_repairs::parse_program(
        "delta Writes(a, p) :- Writes(a, p), delta Author(a, n), Pub(p, t).",
    )
    .unwrap();
    let targets = vec![
        testkit::tid_of(&db, "Author(4, Marge)"),
        testkit::tid_of(&db, "Author(5, Homer)"),
    ];
    let seeded = with_interventions(&cascade, &db, &targets);
    let session = RepairSession::new(db, seeded).unwrap();
    let end = session.run(Semantics::End);
    assert_eq!(
        testkit::names_of(session.db(), end.deleted()),
        [
            "Author(4, Marge)",
            "Author(5, Homer)",
            "Writes(4, 6)",
            "Writes(5, 7)"
        ]
    );
}

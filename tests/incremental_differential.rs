//! The incremental re-repair differential suite.
//!
//! Acceptance bar of the delta-driven maintenance refactor: for Figure 1
//! and **all 26 Table 1 / Table 2 workloads**, in **all four semantics**,
//! a session that mutates and then re-repairs (journal-driven incremental
//! advance for end semantics, full paths for the others) must produce
//! delete-sets **bit-identical — order included —** to a fresh session
//! built over the mutated instance and recomputing from scratch. The suite
//! runs unchanged under `--features parallel` (CI runs both).
//!
//! Mutations are deterministic but adversarial for the maintenance code:
//! a ~1% spread of tombstones (exercising DRed over-delete/re-derive),
//! re-insertion of previously deleted *values* under fresh row ids
//! (re-enabling joins through old keys), and synthetic never-joining rows
//! (exercising the cheap no-cone path).

use delta_repairs::datagen::{mas, tpch, MasConfig, TpchConfig};
use delta_repairs::{
    AttrType, Instance, Program, RepairRequest, RepairSession, Semantics, TupleId, Value,
};

/// Delete every `stride`-th live tuple (about 1% for `stride = 100`),
/// then re-insert the values of every other deleted tuple as fresh rows,
/// plus `fresh` synthetic rows per relation that join nothing.
fn mutate(session: &mut RepairSession, stride: usize, fresh: usize, salt: i64) -> usize {
    let doomed: Vec<TupleId> = session
        .db()
        .all_tuple_ids()
        .enumerate()
        .filter(|(i, _)| i % stride == stride / 2)
        .map(|(_, t)| t)
        .collect();
    let readd: Vec<Vec<Value>> = doomed
        .iter()
        .step_by(2)
        .map(|&t| session.db().tuple(t).values().to_vec())
        .collect();
    let rel_names: Vec<String> = session
        .db()
        .schema()
        .iter()
        .map(|(_, rs)| rs.name.clone())
        .collect();
    let removed = session.delete_batch(&doomed).expect("ids are live");
    for (rel, values) in doomed.iter().step_by(2).map(|t| t.rel).zip(readd) {
        let name = &session.db().schema().rel(rel).name.clone();
        session
            .insert_batch(name, [values])
            .expect("re-inserted values fit their own schema");
    }
    for name in &rel_names {
        let rel = session.db().schema().rel_id(name).unwrap();
        let attrs = session.db().schema().rel(rel).attrs.clone();
        for i in 0..fresh {
            let row: Vec<Value> = attrs
                .iter()
                .enumerate()
                .map(|(c, a)| match a.ty {
                    AttrType::Int => Value::Int(1_000_000_000 + salt * 1000 + (i * 17 + c) as i64),
                    AttrType::Str => Value::str(&format!("synthetic-{salt}-{i}-{c}")),
                })
                .collect();
            session.insert_batch(name, [row]).expect("typed row");
        }
    }
    removed
}

/// After mutating, every semantics must agree bit-for-bit with a fresh
/// session over a clone of the mutated instance, and the end answer must
/// actually have been served incrementally.
fn assert_mutated_session_matches_fresh(label: &str, mutated: &RepairSession) {
    let fresh = RepairSession::new(mutated.db().clone(), mutated.program().clone())
        .unwrap_or_else(|e| panic!("{label}: fresh session: {e}"));
    for sem in Semantics::ALL {
        let inc = mutated.run(sem);
        let full = fresh
            .repair(&RepairRequest::new(sem).incremental(false))
            .unwrap();
        assert_eq!(
            inc.deleted(),
            full.deleted(),
            "{label}/{sem}: mutate-then-repair diverged from a fresh full recompute"
        );
        if sem == Semantics::End {
            assert!(
                inc.served_incrementally(),
                "{label}/end: expected the incremental path, got a fallback"
            );
        }
        // Thread-count invariance rides along: explicit worker counts must
        // not change a single bit of any answer (the incremental advance
        // included — the mutated session serves End from its checkpoint).
        for threads in [2usize, 4] {
            let at = mutated
                .repair(&RepairRequest::new(sem).threads(threads))
                .unwrap();
            assert_eq!(
                at.deleted(),
                full.deleted(),
                "{label}/{sem}: diverged at {threads} threads"
            );
        }
    }
}

fn exercise(label: &str, db: &Instance, program: Program, stride: usize) {
    let mut session =
        RepairSession::new(db.clone(), program).unwrap_or_else(|e| panic!("{label}: session: {e}"));
    // Prime the checkpoint, then run two mutation windows so the second
    // advance starts from an already-advanced (not freshly primed) state.
    session.run(Semantics::End);
    mutate(&mut session, stride, 2, 1);
    let end_after_first = session.run(Semantics::End);
    assert!(
        end_after_first.served_incrementally(),
        "{label}: first window must advance incrementally"
    );
    mutate(&mut session, stride, 2, 2);
    assert_mutated_session_matches_fresh(label, &session);
}

#[test]
fn figure1_mutate_then_repair_matches_fresh_recompute() {
    // Small instance: stride 3 deletes a third of it — far past 1%, all
    // the better for the retraction paths.
    exercise(
        "figure1",
        &delta_repairs::testkit::figure1_instance(),
        delta_repairs::testkit::figure2_program(),
        3,
    );
}

#[test]
fn all_mas_workloads_mutate_then_repair_match_fresh_recompute() {
    let data = mas::generate(&MasConfig::scaled(0.02));
    let workloads = delta_repairs::workloads::mas_programs(&data);
    assert_eq!(workloads.len(), 20, "all of Table 1");
    for w in workloads {
        exercise(&w.name, &data.db, w.program, 100);
    }
}

#[test]
fn all_tpch_workloads_mutate_then_repair_match_fresh_recompute() {
    let data = tpch::generate(&TpchConfig::scaled(0.01));
    let workloads = delta_repairs::workloads::tpch_programs(&data);
    assert_eq!(workloads.len(), 6, "all of Table 2");
    for w in workloads {
        exercise(&w.name, &data.db, w.program, 100);
    }
}

#[test]
fn undo_heavy_churn_still_matches_fresh_recompute() {
    // apply → undo → mutate → repair: restores flow through the journal as
    // net inserts and must advance the checkpoint exactly like fresh data.
    let mut session = RepairSession::new(
        delta_repairs::testkit::figure1_instance(),
        delta_repairs::testkit::figure2_program(),
    )
    .unwrap();
    let outcome = session.run(Semantics::End);
    outcome.apply(&mut session).unwrap();
    assert_eq!(session.run(Semantics::End).size(), 0);
    session.undo().unwrap();
    let back = session.run(Semantics::End);
    assert!(back.served_incrementally());
    assert_eq!(back.deleted(), outcome.deleted());
    mutate(&mut session, 4, 1, 7);
    assert_mutated_session_matches_fresh("figure1-undo-churn", &session);
}

//! Golden-diagnostic tests for the static analyzer: one fixture per lint,
//! pinning the exact code, severity, rule index, and source span each pass
//! reports. These are deliberately brittle — a change to any diagnostic's
//! code or anchoring is a user-visible change to `delta-repair lint` (and
//! to everything that parses its `--json` output) and must show up here.

use delta_repairs::datalog::{
    certify, lint, parse_program, Atom, Program, Rule, Severity, Span, Term,
};
use delta_repairs::{AttrType, Schema};

/// The schema the fixtures lint against (a trimmed Figure 1).
fn schema() -> Schema {
    let mut s = Schema::new();
    s.relation("Grant", &[("gid", AttrType::Int), ("name", AttrType::Str)]);
    s.relation("Author", &[("aid", AttrType::Int), ("name", AttrType::Str)]);
    s.relation(
        "AuthGrant",
        &[("aid", AttrType::Int), ("gid", AttrType::Int)],
    );
    s
}

/// Lint `src` against the fixture schema and return the full report.
fn report(src: &str) -> delta_repairs::datalog::LintReport {
    let p = parse_program(src).expect("fixture parses");
    lint(Some(&schema()), &p)
}

/// The single diagnostic with `code`, asserting there is exactly one.
fn only(src: &str, code: &str) -> delta_repairs::datalog::Diagnostic {
    let r = report(src);
    let hits: Vec<_> = r.diagnostics.iter().filter(|d| d.code == code).collect();
    assert_eq!(
        hits.len(),
        1,
        "expected exactly one {code} in:\n{}",
        r.render()
    );
    hits[0].clone()
}

#[test]
fn e001_unknown_relation_anchors_to_the_atom() {
    let d = only("delta Nope(x) :- Nope(x).", "E001");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.rule, Some(0));
    assert_eq!(d.span, Some(Span { line: 1, col: 1 }));
    assert!(
        d.message.contains("unknown relation `Nope`"),
        "{}",
        d.message
    );
}

#[test]
fn e002_arity_mismatch() {
    // Second line, so the span proves the *rule's* position is reported.
    let d = only(
        "delta Grant(g, n) :- Grant(g, n).\ndelta Grant(g) :- Grant(g).",
        "E002",
    );
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.rule, Some(1));
    assert_eq!(d.span, Some(Span { line: 2, col: 1 }));
    assert!(d.message.contains("expects 2"), "{}", d.message);
}

#[test]
fn e003_type_mismatch_anchors_to_the_atom() {
    // `AuthGrant.gid` is an int column; the string constant in column 1 is
    // a type error, anchored at the offending body atom (column 35).
    let d = only(
        "delta Grant(g, n) :- Grant(g, n), AuthGrant(5, 'x').",
        "E003",
    );
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.rule, Some(0));
    assert_eq!(d.span, Some(Span { line: 1, col: 35 }));
    assert!(d.message.contains("column 1"), "{}", d.message);
}

#[test]
fn e004_head_not_delta_via_constructed_ast() {
    // The concrete syntax cannot express a non-delta head (`delta` is part
    // of the rule grammar), so build the malformed rule directly.
    let head = Atom::base("Grant", vec![Term::var("g"), Term::var("n")]);
    let body = vec![Atom::base("Grant", vec![Term::var("g"), Term::var("n")])];
    let program = Program::new(vec![Rule::new(head, body, vec![])]);
    let r = lint(Some(&schema()), &program);
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == "E004")
        .expect("head-not-delta diagnostic");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.rule, Some(0));
    assert_eq!(d.span, None, "constructed AST carries no source span");
}

#[test]
fn e005_missing_head_witness() {
    let d = only("delta Grant(g, n) :- AuthGrant(a, g).", "E005");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.rule, Some(0));
    assert_eq!(d.span, Some(Span { line: 1, col: 1 }));
    assert!(d.message.contains("Def. 3.1"), "{}", d.message);
}

#[test]
fn e006_unsafe_variable() {
    // `m` appears only in the comparison, never in a positive body atom.
    let d = only("delta Grant(g, n) :- Grant(g, n), m = 1.", "E006");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.rule, Some(0));
    assert_eq!(d.span, Some(Span { line: 1, col: 1 }));
    assert!(d.message.contains('m'), "{}", d.message);
}

#[test]
fn w101_dead_rule_anchors_to_the_underivable_atom() {
    let d = only(
        "delta Grant(g, n) :- Grant(g, n), delta Author(a, m).",
        "W101",
    );
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.rule, Some(0));
    // The span is the `delta Author(...)` body atom, not the rule head.
    assert_eq!(d.span, Some(Span { line: 1, col: 35 }));
    assert!(d.message.contains("delta Author"), "{}", d.message);
}

#[test]
fn w102_constant_contradiction() {
    let d = only("delta Grant(g, n) :- Grant(g, n), g = 1, g = 2.", "W102");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.rule, Some(0));
    assert_eq!(d.span, Some(Span { line: 1, col: 1 }));
    assert!(
        d.message.contains("contradicts earlier binding `g = 1`"),
        "{}",
        d.message
    );
}

#[test]
fn w103_cartesian_product_counts_components() {
    let d = only(
        "delta Grant(g, n) :- Grant(g, n), Author(a, m), AuthGrant(b, c).",
        "W103",
    );
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.rule, Some(0));
    assert_eq!(d.span, Some(Span { line: 1, col: 1 }));
    assert!(d.message.contains("3 disconnected"), "{}", d.message);
}

#[test]
fn w104_duplicate_reported_on_the_later_rule() {
    let d = only(
        "delta Grant(g, n) :- Grant(g, n), n = 'ERC'.\n\
         delta Grant(x, y) :- Grant(x, y), y = 'ERC'.",
        "W104",
    );
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.rule, Some(1), "the later twin is the redundant one");
    assert_eq!(d.span, Some(Span { line: 2, col: 1 }));
    assert_eq!(d.message, "rule 1 duplicates rule 0");
}

#[test]
fn w105_subsumed_by_more_general_rule() {
    let d = only(
        "delta Grant(g, n) :- Grant(g, n).\n\
         delta Grant(g, n) :- Grant(g, n), AuthGrant(a, g).",
        "W105",
    );
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.rule, Some(1));
    assert_eq!(d.span, Some(Span { line: 2, col: 1 }));
    assert_eq!(d.message, "rule 1 is subsumed by the more general rule 0");
}

#[test]
fn i201_unused_relation_is_program_scoped() {
    let r = report("delta Grant(g, n) :- Grant(g, n).");
    let unused: Vec<_> = r.diagnostics.iter().filter(|d| d.code == "I201").collect();
    // Author and AuthGrant are both untouched; program-scoped findings
    // carry no rule index or span and sort after rule-scoped ones.
    assert_eq!(unused.len(), 2, "{}", r.render());
    for d in &unused {
        assert_eq!(d.severity, Severity::Info);
        assert_eq!(d.rule, None);
        assert_eq!(d.span, None);
    }
    assert!(unused[0].message.contains("`Author`"));
    assert!(unused[1].message.contains("`AuthGrant`"));
}

#[test]
fn i202_recursion_cycle_is_printed() {
    let d = only(
        "delta Grant(g, n) :- Grant(g, n), delta AuthGrant(a, g).\n\
         delta AuthGrant(a, g) :- AuthGrant(a, g), delta Grant(g, n).",
        "I202",
    );
    assert_eq!(d.severity, Severity::Info);
    assert_eq!(d.rule, None);
    // Deterministic cycle reconstruction: relations visited in sorted
    // order, so the printed cycle always starts from AuthGrant.
    assert_eq!(
        d.message,
        "program is recursive through delta relations: AuthGrant -> Grant -> AuthGrant"
    );
}

#[test]
fn i203_certificate_matches_certify() {
    let src = "delta Grant(g, n) :- Grant(g, n), n = 'ERC'.\n\
               delta AuthGrant(a, g) :- AuthGrant(a, g), delta Grant(g, n).";
    let r = report(src);
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == "I203")
        .expect("certificate info line");
    let cert = certify(&parse_program(src).unwrap());
    assert!(cert.pure_cascade);
    assert_eq!(d.message, cert.describe());
    assert_eq!(d.message, r.certificate.describe());
}

#[test]
fn uncertified_program_emits_no_i203() {
    // Figure-2-style interaction: no certificate, no info line.
    let r = report(
        "delta Grant(g, n) :- Grant(g, n), n = 'ERC'.\n\
         delta Author(a, n) :- Author(a, n), AuthGrant(a, g), delta Grant(g, gn).\n\
         delta AuthGrant(a, g) :- AuthGrant(a, g), Author(a, n), delta Grant(g2, gn).",
    );
    assert!(!r.certificate.any());
    assert!(r.diagnostics.iter().all(|d| d.code != "I203"));
}

#[test]
fn diagnostics_are_ordered_by_rule_then_program_scoped() {
    // Rule 0 is dead (W101: nothing derives Δ AuthGrant), rule 1 is a
    // cartesian product (W103); Author is untouched (I201) and the program
    // still earns an interaction-free certificate (I203). Rule-scoped
    // findings come first in rule order, program-scoped ones last, in pass
    // order. This must be stable.
    let r = report(
        "delta Grant(g, n) :- Grant(g, n), delta AuthGrant(a, g).\n\
         delta Grant(x, y) :- Grant(x, y), AuthGrant(a, b).",
    );
    let codes: Vec<&str> = r.diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(
        codes,
        vec!["W101", "W103", "I201", "I203"],
        "{}",
        r.render()
    );
}

//! The paper's running example, end to end — Figures 1–5 and Examples
//! 1.1–5.2 as executable assertions.

use delta_repairs::{testkit, RepairOutcome, RepairSession, Semantics};

fn names(session: &RepairSession, r: &RepairOutcome) -> Vec<String> {
    testkit::names_of(session.db(), r.deleted())
}

fn setup() -> RepairSession {
    RepairSession::new(testkit::figure1_instance(), testkit::figure2_program())
        .expect("figure 2 program")
}

/// Example 1.3 / Figure 4: `End(P, D) = {g2, a2, a3, w1, w2, p1, p2, c}`
/// (gray + green + pink + orange tuples).
#[test]
fn end_semantics_deletes_eight_tuples() {
    let session = setup();
    let end = session.run(Semantics::End);
    assert_eq!(
        names(&session, &end),
        [
            "Author(4, Marge)",
            "Author(5, Homer)",
            "Cite(7, 6)",
            "Grant(2, ERC)",
            "Pub(6, x)",
            "Pub(7, y)",
            "Writes(4, 6)",
            "Writes(5, 7)",
        ]
    );
}

/// Example 1.3 / Example 3.8: `Stage(P, D)` = End minus the Cite tuple —
/// rule (4) never fires because `Pub` and `Writes` empty out in the same
/// stage that derives `ΔPub`.
#[test]
fn stage_semantics_deletes_seven_tuples() {
    let session = setup();
    let stage = session.run(Semantics::Stage);
    assert_eq!(
        names(&session, &stage),
        [
            "Author(4, Marge)",
            "Author(5, Homer)",
            "Grant(2, ERC)",
            "Pub(6, x)",
            "Pub(7, y)",
            "Writes(4, 6)",
            "Writes(5, 7)",
        ]
    );
}

/// Example 1.3 / Examples 3.6 and 5.2: the minimum firing sequence deletes
/// the grant, both authors and both Writes tuples — deleting `Writes` first
/// starves rules (2) and (4).
#[test]
fn step_semantics_deletes_five_tuples() {
    let session = setup();
    let step = session.run(Semantics::Step);
    assert_eq!(
        names(&session, &step),
        [
            "Author(4, Marge)",
            "Author(5, Homer)",
            "Grant(2, ERC)",
            "Writes(4, 6)",
            "Writes(5, 7)",
        ]
    );
}

/// Examples 3.4 and 5.1: the global minimum severs the `AuthGrant` links
/// instead of cascading — three deletions.
#[test]
fn independent_semantics_deletes_three_tuples() {
    let session = setup();
    let ind = session.run(Semantics::Independent);
    assert_eq!(
        names(&session, &ind),
        ["AuthGrant(4, 2)", "AuthGrant(5, 2)", "Grant(2, ERC)"]
    );
    assert!(ind.proven_optimal(), "tiny instance must be solved exactly");
}

/// Proposition 3.18: every semantics returns a stabilizing set, and the
/// whole database is trivially stabilizing.
#[test]
fn all_results_and_full_db_are_stabilizing() {
    let session = setup();
    for sem in Semantics::ALL {
        let r = session.run(sem);
        assert!(
            session.verify_stabilizing(r.deleted()),
            "{sem} result must stabilize"
        );
    }
    let everything: Vec<_> = session.db().all_tuple_ids().collect();
    assert!(session.verify_stabilizing(&everything));
}

/// Example 1.2's four hand-listed stabilizing sets all check out (each set
/// implicitly includes the seed tuple g2 deleted by rule 0).
#[test]
fn example_1_2_stabilizing_sets() {
    let session = setup();
    let db = session.db();
    let sets: [&[&str]; 4] = [
        &[
            "Author(4, Marge)",
            "Author(5, Homer)",
            "Writes(4, 6)",
            "Writes(5, 7)",
            "Pub(6, x)",
            "Pub(7, y)",
            "Cite(7, 6)",
        ],
        &[
            "Author(4, Marge)",
            "Author(5, Homer)",
            "Writes(4, 6)",
            "Writes(5, 7)",
            "Pub(6, x)",
            "Pub(7, y)",
        ],
        &[
            "Author(4, Marge)",
            "Author(5, Homer)",
            "Writes(4, 6)",
            "Writes(5, 7)",
        ],
        &["AuthGrant(4, 2)", "AuthGrant(5, 2)"],
    ];
    for set in sets {
        let mut tids: Vec<_> = set.iter().map(|n| testkit::tid_of(db, n)).collect();
        tids.push(testkit::tid_of(db, "Grant(2, ERC)"));
        tids.sort_unstable();
        assert!(
            session.verify_stabilizing(&tids),
            "Example 1.2 set {set:?} must stabilize"
        );
    }
}

/// A proper subset of a minimal stabilizing set must NOT stabilize.
#[test]
fn partial_deletions_do_not_stabilize() {
    let session = setup();
    let db = session.db();
    // Only the seed: rules (1)+ still fire.
    let seed = vec![testkit::tid_of(db, "Grant(2, ERC)")];
    assert!(!session.verify_stabilizing(&seed));
    // The empty set: rule (0) fires.
    assert!(!session.verify_stabilizing(&[]));
    // One of the two AuthGrant links is not enough.
    let partial = vec![
        testkit::tid_of(db, "Grant(2, ERC)"),
        testkit::tid_of(db, "AuthGrant(4, 2)"),
    ];
    assert!(!session.verify_stabilizing(&partial));
}

/// Figure 3: sizes and containments among the four results.
#[test]
fn figure3_relationships_hold_on_the_running_example() {
    let session = setup();
    let [ind, step, stage, end] = session.run_all();
    assert!(ind.size() <= step.size());
    assert!(ind.size() <= stage.size());
    assert!(delta_repairs::relationships::is_subset(
        step.deleted(),
        end.deleted()
    ));
    assert!(delta_repairs::relationships::is_subset(
        stage.deleted(),
        end.deleted()
    ));
    assert!(delta_repairs::relationships::check_figure3_invariants(
        ind.as_result(),
        step.as_result(),
        stage.as_result(),
        end.as_result()
    )
    .is_none());
}

/// Example 3.17: a DC-style delta rule (two publications with the same
/// title in different venues) makes the database unstable without any seed
/// rule, and repair deletes exactly one of the pair.
#[test]
fn example_3_17_dc_violation_starts_deletion() {
    use delta_repairs::{AttrType, Instance, Schema, Value};
    let mut s = Schema::new();
    s.relation(
        "Pub",
        &[
            ("pid", AttrType::Int),
            ("title", AttrType::Str),
            ("conf", AttrType::Str),
        ],
    );
    let mut db = Instance::new(s);
    db.insert_values("Pub", [Value::Int(1), Value::str("X"), Value::str("C1")])
        .unwrap();
    db.insert_values("Pub", [Value::Int(2), Value::str("X"), Value::str("C2")])
        .unwrap();
    db.insert_values("Pub", [Value::Int(3), Value::str("Y"), Value::str("C1")])
        .unwrap();
    let program = delta_repairs::parse_program(
        "delta Pub(p1, t1, c1) :- Pub(p1, t1, c1), Pub(p2, t2, c2), t1 = t2, c1 != c2.",
    )
    .unwrap();
    let session = RepairSession::new(db, program).unwrap();
    assert!(!session.is_stable(), "duplicate title ⇒ unstable");
    let ind = session.run(Semantics::Independent);
    assert_eq!(ind.size(), 1, "deleting either of the pair suffices");
    let end = session.run(Semantics::End);
    assert_eq!(end.size(), 2, "end semantics deletes both");
    // The untouched publication Y survives everywhere.
    let y = testkit::tid_of(session.db(), "Pub(3, Y, C1)");
    assert!(!ind.contains(y) && !end.contains(y));
}

/// Example 2.1: the end-semantics fixpoint derives exactly the eight delta
/// tuples listed in the paper, layer by layer.
#[test]
fn example_2_1_derivation_layers() {
    let session = setup();
    let db = session.db();
    let out = delta_repairs::end::run(db, session.evaluator());
    // Layers: ΔGrant at round 1; ΔAuthor at 2; ΔWrites/ΔPub at 3; ΔCite at 4.
    let layer = |name: &str| out.layers[&testkit::tid_of(db, name)];
    assert_eq!(layer("Grant(2, ERC)"), 1);
    assert_eq!(layer("Author(4, Marge)"), 2);
    assert_eq!(layer("Author(5, Homer)"), 2);
    assert_eq!(layer("Writes(4, 6)"), 3);
    assert_eq!(layer("Pub(6, x)"), 3);
    assert_eq!(layer("Pub(7, y)"), 3);
    assert_eq!(layer("Cite(7, 6)"), 4);
    assert_eq!(out.deleted.len(), 8);
}

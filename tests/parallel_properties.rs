//! Thread-count invariance of the morsel-driven parallel evaluator.
//!
//! `tests/engine_parity.rs` pins the fixpoint drivers against the seed
//! loops on fixed workloads (at thread counts 1, 2 and 4); this suite
//! randomizes the other axes: random thread counts (1..=8) × random
//! workloads (a pool of program shapes over random instances) × all four
//! semantics must produce delete-sets bit-identical to the serial
//! reference (`threads(1)`), and the incremental engine's
//! [`delta_repairs::engine::FixpointDriver::advance`] must report
//! bit-identical [`delta_repairs::engine::AdvanceStats`] and fixpoints for
//! random mutation batches at every thread count.
//!
//! The whole binary runs with `DELTA_REPAIRS_MORSEL=5` so even these small
//! random instances split into many morsels — the merge discipline is
//! exercised for real, not just the single-task inline path. On serial
//! builds the thread knob is inert and every property is trivially (but
//! still usefully — the knob must not *change* anything) satisfied.

use delta_repairs::datalog::Evaluator;
use delta_repairs::engine::{DeltaPolicy, EngineState, FixpointDriver};
use delta_repairs::{
    parse_program, AttrType, Instance, RepairRequest, RepairSession, Schema, Semantics, Value,
};
use proptest::prelude::*;

/// Force tiny morsels for this test binary, before any parallel round can
/// cache the default. Every test calls this first; `Once` makes the write
/// race-free against the lazy readers in the evaluator.
fn tiny_morsels() {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| std::env::set_var("DELTA_REPAIRS_MORSEL", "5"));
}

/// A pool of program shapes over the fixed 3-relation schema: cascades,
/// DC-like wide joins, multi-delta rules, recursion, comparisons — the
/// structural variety the morsel scheduler has to keep deterministic.
const PROGRAMS: [&str; 6] = [
    // Pure cascade.
    "delta R1(x) :- R1(x), x < 3.
     delta R2(x, y) :- R2(x, y), delta R1(x).
     delta R3(y) :- R3(y), delta R2(x, y).",
    // One wide DC-like rule: nothing to fan out per rule.
    "delta R2(x, y) :- R2(x, y), R1(x), R3(y).",
    // Mixed: seed + join through the delta.
    "delta R1(x) :- R1(x), x = 0.
     delta R3(y) :- R3(y), R2(x, y), delta R1(x).",
    // Mutual recursion through two delta relations.
    "delta R1(x) :- R1(x), x = 1.
     delta R2(x, y) :- R2(x, y), delta R1(x).
     delta R1(x) :- R1(x), R2(x, y), delta R2(x, y).",
    // Multiple delta atoms in one body (two frontier foci per round).
    "delta R1(x) :- R1(x), x < 2.
     delta R2(x, y) :- R2(x, y), delta R1(x), delta R1(y).",
    // Comparisons scheduled mid-plan, constants in atoms.
    "delta R2(x, y) :- R2(x, y), R1(x), x != y, y < 5.
     delta R3(y) :- R3(y), R2(1, y).",
];

fn schema() -> Schema {
    let mut s = Schema::new();
    s.relation("R1", &[("a", AttrType::Int)]);
    s.relation("R2", &[("a", AttrType::Int), ("b", AttrType::Int)]);
    s.relation("R3", &[("b", AttrType::Int)]);
    s
}

fn build_db(r1: &[u64], r2: &[(u64, u64)], r3: &[u64]) -> Instance {
    let mut db = Instance::new(schema());
    for &a in r1 {
        db.insert_values("R1", [Value::Int((a % 8) as i64)])
            .unwrap();
    }
    for &(a, b) in r2 {
        db.insert_values(
            "R2",
            [Value::Int((a % 8) as i64), Value::Int((b % 8) as i64)],
        )
        .unwrap();
    }
    for &b in r3 {
        db.insert_values("R3", [Value::Int((b % 8) as i64)])
            .unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random thread counts × random workloads × all four semantics:
    /// delete-sets (and the optimality verdicts derived from them) are
    /// bit-identical to the serial `threads(1)` reference.
    #[test]
    fn all_semantics_are_thread_count_invariant(
        program_idx in 0usize..PROGRAMS.len(),
        r1 in prop::collection::vec(0u64..32, 0..10),
        r2 in prop::collection::vec((0u64..32, 0u64..32), 0..14),
        r3 in prop::collection::vec(0u64..32, 0..10),
        threads in 1usize..=8,
    ) {
        tiny_morsels();
        let db = build_db(&r1, &r2, &r3);
        let program = parse_program(PROGRAMS[program_idx]).expect("pool programs parse");
        let session = RepairSession::new(db, program).expect("pool programs validate");
        for sem in Semantics::ALL {
            // Force full computation so every request measures the same
            // path (the incremental checkpoint is exercised separately).
            let serial = session
                .repair(&RepairRequest::new(sem).incremental(false).threads(1))
                .expect("valid request");
            let parallel = session
                .repair(&RepairRequest::new(sem).incremental(false).threads(threads))
                .expect("valid request");
            prop_assert_eq!(
                serial.deleted(), parallel.deleted(),
                "{} delete-set diverged at {} threads (program {})",
                sem, threads, program_idx
            );
            prop_assert_eq!(
                serial.proven_optimal(), parallel.proven_optimal(),
                "{} optimality verdict diverged at {} threads", sem, threads
            );
        }
    }

    /// The incremental engine advances to bit-identical fixpoints with
    /// bit-identical `AdvanceStats` at every thread count, for random
    /// mutation batches (deletions of live tuples + fresh insertions).
    #[test]
    fn advance_stats_are_thread_count_invariant(
        program_idx in 0usize..PROGRAMS.len(),
        r1 in prop::collection::vec(0u64..32, 1..8),
        r2 in prop::collection::vec((0u64..32, 0u64..32), 1..12),
        r3 in prop::collection::vec(0u64..32, 1..8),
        delete_picks in prop::collection::vec(0usize..64, 0..4),
        insert_rows in prop::collection::vec((0u64..32, 0u64..32), 0..3),
        threads in 2usize..=8,
    ) {
        tiny_morsels();
        let program = parse_program(PROGRAMS[program_idx]).expect("pool programs parse");
        // Two identical databases, mutated identically: one advanced by the
        // serial driver, one by the parallel driver.
        let mut outcomes = Vec::new();
        for t in [1usize, threads] {
            let mut db = build_db(&r1, &r2, &r3);
            let ev = Evaluator::new(&mut db, program.clone()).expect("valid");
            let driver =
                FixpointDriver::new(&ev, DeltaPolicy::AtEnd { naive: false }).threads(Some(t));
            let cursor = db.journal().head();
            let mut es = EngineState::from_outcome(driver.run(&db));
            // Random mutation batch: delete distinct live tuples, insert
            // fresh rows.
            let live: Vec<_> = db.all_tuple_ids().collect();
            let mut doomed: Vec<_> = delete_picks
                .iter()
                .map(|&i| live[i % live.len()])
                .collect();
            doomed.sort_unstable();
            doomed.dedup();
            db.delete_tuples(doomed.iter().copied()).expect("live ids");
            for &(a, b) in &insert_rows {
                db.insert_values(
                    "R2",
                    [Value::Int((a % 8) as i64), Value::Int((b % 8) as i64)],
                )
                .unwrap();
            }
            let batch = db.changes_since(cursor).expect("journal retained");
            let stats = driver.advance(&db, &mut es, &batch);
            outcomes.push((stats, es.deleted(), es.num_assignments()));
        }
        let (serial, parallel) = (&outcomes[0], &outcomes[1]);
        prop_assert_eq!(&serial.0, &parallel.0, "AdvanceStats diverged at {} threads", threads);
        prop_assert_eq!(&serial.1, &parallel.1, "fixpoint diverged at {} threads", threads);
        prop_assert_eq!(serial.2, parallel.2, "hyperedge cache diverged at {} threads", threads);
    }
}

//! Cost-based plans pinned to the static textual planner, from the outside:
//! on every Table 1 / Table 2 / zipf workload (29 programs) and all four
//! semantics, the statistics-driven atom orders must produce a
//! **bit-identical delete-set** (ids *and* order) to the textual-order
//! plans. A join order is an implementation detail — if reordering ever
//! changes *what* gets deleted (not just how fast), the planner broke the
//! enumeration semantics, not the cost model.
//!
//! The delete-set order matters too: every semantics sorts its answer, so
//! comparing full vectors also pins determinism across plan families
//! (main, delta-classed and change-seeded plans all reorder independently).

use delta_repairs::datagen::{mas, scale, tpch, MasConfig, ScaleConfig, TpchConfig};
use delta_repairs::datalog::Evaluator;
use delta_repairs::sat::MinOnesOptions;
use delta_repairs::workloads::{mas_programs, tpch_programs, zipf_programs, Workload};
use delta_repairs::{end, independent, stage, step, Instance, RepairSession};

/// The session's default budget, not the exact-search `u64::MAX` default:
/// the point is comparing the two planners under identical solver inputs
/// (the CNF is canonicalized independent of assignment-stream order), not
/// waiting out an exponential exact search on the zipf formulas.
fn solver_opts() -> MinOnesOptions {
    MinOnesOptions {
        node_budget: RepairSession::DEFAULT_NODE_BUDGET,
        ..MinOnesOptions::default()
    }
}

/// Run all four semantics under both planners and compare delete-sets.
/// Each planner gets its own clone because index construction is
/// plan-dependent (the evaluators build the probe indexes they chose).
fn assert_plans_agree(label: &str, db: &Instance, w: &Workload) {
    let mut db_cost = db.clone();
    let ev_cost =
        Evaluator::new(&mut db_cost, w.program.clone()).unwrap_or_else(|e| panic!("{label}: {e}"));
    let mut db_static = db.clone();
    let ev_static = Evaluator::new_static(&mut db_static, w.program.clone())
        .unwrap_or_else(|e| panic!("{label}: {e}"));

    let pairs = [
        (
            "end",
            end::run(&db_cost, &ev_cost).deleted,
            end::run(&db_static, &ev_static).deleted,
        ),
        (
            "stage",
            stage::run(&db_cost, &ev_cost).deleted,
            stage::run(&db_static, &ev_static).deleted,
        ),
        (
            "step",
            step::run_greedy(&db_cost, &ev_cost).deleted,
            step::run_greedy(&db_static, &ev_static).deleted,
        ),
        (
            "independent",
            independent::run(&db_cost, &ev_cost, &solver_opts()).deleted,
            independent::run(&db_static, &ev_static, &solver_opts()).deleted,
        ),
    ];
    for (sem, cost, textual) in pairs {
        assert_eq!(
            cost, textual,
            "{label}/{sem}: cost-based plan changed the delete-set"
        );
    }
}

#[test]
fn cost_plans_match_static_plans_on_all_mas_workloads() {
    let data = mas::generate(&MasConfig::scaled(0.02));
    let workloads = mas_programs(&data);
    assert_eq!(workloads.len(), 20, "all of Table 1");
    for w in &workloads {
        assert_plans_agree(&w.name, &data.db, w);
    }
}

#[test]
fn cost_plans_match_static_plans_on_all_tpch_workloads() {
    let data = tpch::generate(&TpchConfig::scaled(0.01));
    let workloads = tpch_programs(&data);
    assert_eq!(workloads.len(), 6, "all of Table 2");
    for w in &workloads {
        assert_plans_agree(&w.name, &data.db, w);
    }
}

#[test]
fn cost_plans_match_static_plans_on_zipf_workloads() {
    let data = scale::generate(&ScaleConfig::scaled(0.05));
    let workloads = zipf_programs(&data);
    assert_eq!(workloads.len(), 3, "cascade, join, pessimal");
    for w in &workloads {
        assert_plans_agree(&w.name, &data.db, w);
    }
}

//! Propositions 3.9, 3.18, 3.19 and 3.20 — the constructed families from
//! the paper's appendix, as executable assertions.

use delta_repairs::relationships::{is_subset, set_eq};
use delta_repairs::{parse_program, testkit, RepairSession, Semantics};

/// Prop. 3.20 item 1's witness: `D = {R1(a1..an), R2(b)}` with the rule
/// `Δ1(x) :- R1(x), R2(y)` — independent deletes only `R2(b)` (which no rule
/// can derive), every other semantics deletes all n `R1` tuples.
#[test]
fn prop_320_item1_independent_strictly_smaller() {
    let n = 6;
    let r1: Vec<i64> = (1..=n).collect();
    let db = testkit::tiny_instance(&r1, &[100], &[]);
    let program = parse_program("delta R1(x) :- R1(x), R2(y).").unwrap();
    let session = RepairSession::new(db, program).unwrap();
    let [ind, step, stage, end] = session.run_all();
    assert_eq!(ind.size(), 1);
    assert_eq!(testkit::names_of(session.db(), ind.deleted()), ["R2(100)"]);
    for r in [&step, &stage, &end] {
        assert_eq!(
            r.size(),
            n as usize,
            "{} must delete every R1 tuple",
            r.semantics()
        );
    }
    assert!(ind.size() < step.size() && ind.size() < stage.size());
}

/// Prop. 3.20 items 2 and 3's witness: the three-rule chain where stage
/// stops early (R3 tuples survive) but end derives everything.
#[test]
fn prop_320_items_2_3_stage_and_step_strictly_inside_end() {
    let n = 5;
    let r3: Vec<i64> = (10..10 + n).collect();
    let db = testkit::tiny_instance(&[1], &[1], &r3);
    let program = parse_program(
        "delta R1(x) :- R1(x).
         delta R2(x) :- delta R1(x), R2(x).
         delta R3(y) :- R1(x), delta R2(x), R3(y).",
    )
    .unwrap();
    let session = RepairSession::new(db, program).unwrap();
    let [_, step, stage, end] = session.run_all();
    // End keeps R1 frozen, so rule 3 sees R1(1) and deletes every R3 tuple.
    assert_eq!(end.size(), 2 + n as usize);
    // Stage deletes R1(1) in stage 1; by the time ΔR2 exists, R1 is empty.
    assert_eq!(stage.size(), 2);
    assert!(is_subset(stage.deleted(), end.deleted()), "Stage ⊆ End");
    assert!(stage.size() < end.size(), "strict on this family");
    assert!(is_subset(step.deleted(), end.deleted()), "Step ⊆ End");
    assert!(step.size() < end.size(), "strict on this family");
}

/// Prop. 3.20 item 4, part 1: two rules with the same body — stage fires
/// both (deleting everything), step fires one and starves the other.
#[test]
fn prop_320_item4_step_strictly_inside_stage() {
    let n = 4;
    let r2: Vec<i64> = (20..20 + n).collect();
    let db = testkit::tiny_instance(&[1], &r2, &[]);
    let program = parse_program(
        "delta R1(x) :- R1(x), R2(y).
         delta R2(y) :- R1(x), R2(y).",
    )
    .unwrap();
    let session = RepairSession::new(db, program).unwrap();
    let [ind, step, stage, _] = session.run_all();
    assert_eq!(stage.size(), 1 + n as usize, "stage deletes D entirely");
    assert_eq!(step.size(), 1, "step deletes only R1(1)");
    assert!(is_subset(step.deleted(), stage.deleted()));
    assert_eq!(ind.size(), 1);
}

/// Prop. 3.20 item 4, part 2: the four-rule family from the appendix proof
/// where firing either of rules 1/2 first (step) leaves the other relation
/// intact as a witness for rule 3 (or 4), which then deletes every R3
/// tuple; stage resolves rules 1–2 in a single round, so rules 3–4 never
/// fire.
///
/// Note: the appendix's own witness sets are `Stage = {R1(a), R2(b)}` and
/// `Step = {R1(a), R3(c1..cn)}` (or the R2 variant) — the containment in
/// item 4 is realized as the strict *size* inequality |Stage| < |Step| with
/// incomparable sets, and that is what we assert (see DESIGN.md).
#[test]
fn prop_320_item4_stage_smaller_than_step() {
    let n = 5;
    let r3: Vec<i64> = (30..30 + n).collect();
    let db = testkit::tiny_instance(&[1], &[2], &r3);
    let program = parse_program(
        "delta R1(x) :- R1(x), R2(y).
         delta R2(y) :- R1(x), R2(y).
         delta R3(z) :- R3(z), delta R1(x), R2(y).
         delta R3(z) :- R3(z), R1(x), delta R2(y).",
    )
    .unwrap();
    let session = RepairSession::new(db, program).unwrap();
    let [_, step, stage, _] = session.run_all();
    // Stage: round 1 deletes R1(1) and R2(2); rounds 2+ have empty R1/R2,
    // so rules 3 and 4 never produce anything.
    assert_eq!(stage.size(), 2);
    // Step: the first firing dooms every R3 tuple, and the starved seed
    // tuple (R1 or R2) survives — the sets are incomparable.
    assert_eq!(step.size(), 1 + n as usize);
    assert!(stage.size() < step.size());
    assert!(!is_subset(step.deleted(), stage.deleted()));
    assert!(!is_subset(stage.deleted(), step.deleted()));
    // Both are nonetheless stabilizing (Prop. 3.18).
    assert!(session.verify_stabilizing(step.deleted()));
    assert!(session.verify_stabilizing(stage.deleted()));
}

/// Prop. 3.19: `{R1(a), R2(b)}` with symmetric rules has two equally
/// minimal results; whichever is returned, it has size 1 and stabilizes.
#[test]
fn prop_319_nondeterministic_minimum() {
    let db = testkit::tiny_instance(&[1], &[2], &[]);
    let program = parse_program(
        "delta R1(x) :- R1(x), R2(y).
         delta R2(y) :- R1(x), R2(y).",
    )
    .unwrap();
    let session = RepairSession::new(db, program).unwrap();
    for sem in [Semantics::Independent, Semantics::Step] {
        let r = session.run(sem);
        assert_eq!(r.size(), 1, "{sem}");
        let name = testkit::names_of(session.db(), r.deleted());
        assert!(name == ["R1(1)"] || name == ["R2(2)"], "{sem}: {name:?}");
        assert!(session.verify_stabilizing(r.deleted()));
    }
}

/// Prop. 3.9: stage semantics converges to a unique fixpoint — rule order
/// must not matter.
#[test]
fn prop_39_stage_is_rule_order_independent() {
    let base = testkit::figure2_program();
    let mut perm = base.clone();
    perm.rules.reverse();
    let a = RepairSession::new(testkit::figure1_instance(), base)
        .unwrap()
        .run(Semantics::Stage);
    let b = RepairSession::new(testkit::figure1_instance(), perm)
        .unwrap()
        .run(Semantics::Stage);
    assert!(set_eq(a.deleted(), b.deleted()));
}

/// End semantics is likewise order-independent (standard datalog).
#[test]
fn end_is_rule_order_independent() {
    let base = testkit::figure2_program();
    let mut perm = base.clone();
    perm.rules.rotate_left(2);
    let a = RepairSession::new(testkit::figure1_instance(), base)
        .unwrap()
        .run(Semantics::End);
    let b = RepairSession::new(testkit::figure1_instance(), perm)
        .unwrap()
        .run(Semantics::End);
    assert!(set_eq(a.deleted(), b.deleted()));
}

/// A stable database needs no repair: every semantics returns ∅.
#[test]
fn stable_database_yields_empty_repairs() {
    let db = testkit::tiny_instance(&[1, 2], &[], &[]);
    // Rule requires an R2 witness; R2 is empty.
    let program = parse_program("delta R1(x) :- R1(x), R2(y).").unwrap();
    let session = RepairSession::new(db, program).unwrap();
    assert!(session.is_stable());
    for sem in Semantics::ALL {
        assert_eq!(session.run(sem).size(), 0, "{sem}");
    }
}

/// The one-tuple, one-rule case of Section 3.6 where all semantics agree on
/// the unique stabilizing set.
#[test]
fn single_tuple_unique_stabilizing_set() {
    let db = testkit::tiny_instance(&[7], &[], &[]);
    let program = parse_program("delta R1(x) :- R1(x).").unwrap();
    let session = RepairSession::new(db, program).unwrap();
    let results = session.run_all();
    for r in &results {
        assert_eq!(
            testkit::names_of(session.db(), r.deleted()),
            ["R1(7)"],
            "{}",
            r.semantics()
        );
    }
}

//! Recursive delta programs (the paper's Section 8): all definitions and
//! all four semantics apply — delta relations grow monotonically inside a
//! finite universe, so every fixpoint terminates. Only the provenance
//! *size* guarantees weaken, which `datalog::analyze` reports.

use delta_repairs::{
    analyze, parse_program, AttrType, Instance, RepairSession, Schema, Semantics, Value,
};

/// Transitive deletion over a graph: deleting a node deletes its
/// out-neighbours, recursively — `ΔNode` depends on itself.
fn reachability_setup(chain: usize) -> (Instance, delta_repairs::Program) {
    let mut s = Schema::new();
    s.relation("Node", &[("v", AttrType::Int)]);
    s.relation("Edge", &[("u", AttrType::Int), ("v", AttrType::Int)]);
    let mut db = Instance::new(s);
    for v in 0..chain as i64 {
        db.insert_values("Node", [Value::Int(v)]).unwrap();
    }
    for v in 0..chain as i64 - 1 {
        db.insert_values("Edge", [Value::Int(v), Value::Int(v + 1)])
            .unwrap();
    }
    let program = parse_program(
        "delta Node(v) :- Node(v), v = 0.
         delta Node(v) :- Node(v), Edge(u, v), delta Node(u).",
    )
    .unwrap();
    (db, program)
}

#[test]
fn analysis_flags_the_recursion() {
    let (_, program) = reachability_setup(3);
    let a = analyze(&program);
    assert!(!a.is_nonrecursive());
    assert_eq!(a.recursive_relations, vec!["Node".to_string()]);
    assert_eq!(a.max_cascade_depth, None);
    assert_eq!(a.seed_rules, vec![0]);
}

#[test]
fn all_semantics_terminate_on_the_recursive_chain() {
    let n = 12;
    let (db, program) = reachability_setup(n);
    let session = RepairSession::new(db, program).unwrap();
    for sem in Semantics::ALL {
        let r = session.run(sem);
        match sem {
            // The operational semantics must follow the cascade: every
            // node reachable from the seed is derived and deleted.
            Semantics::Step | Semantics::Stage | Semantics::End => {
                assert_eq!(r.size(), n, "{sem} must delete every node")
            }
            // The global minimum is *not* the cascade: deleting the seed
            // node and severing the first edge stabilizes at size 2 —
            // independent semantics may delete non-derivable tuples.
            Semantics::Independent => {
                assert_eq!(r.size(), 2, "independent cuts the chain instead")
            }
        }
        assert!(session.verify_stabilizing(r.deleted()), "{sem}");
    }
}

#[test]
fn recursion_depth_is_data_dependent() {
    // The end-semantics round count grows with the chain length — the
    // data-dependent depth that `max_cascade_depth: None` warns about.
    for n in [3usize, 6, 9] {
        let (db, program) = reachability_setup(n);
        let session = RepairSession::new(db, program).unwrap();
        let out = delta_repairs::end::run(session.db(), session.evaluator());
        assert_eq!(out.deleted.len(), n);
        assert!(
            out.rounds as usize >= n,
            "chain of {n} needs at least {n} rounds, got {}",
            out.rounds
        );
    }
}

#[test]
fn disconnected_nodes_survive_the_recursive_cascade() {
    let (mut db, program) = reachability_setup(5);
    // An island: node 100 with no incoming edge.
    db.insert_values("Node", [Value::Int(100)]).unwrap();
    let session = RepairSession::new(db, program).unwrap();
    let island = session
        .db()
        .all_tuple_ids()
        .find(|&t| session.db().display_tuple(t) == "Node(100)")
        .unwrap();
    for sem in Semantics::ALL {
        let r = session.run(sem);
        assert!(!r.contains(island), "{sem} must spare the island");
        assert!(session.verify_stabilizing(r.deleted()), "{sem}");
    }
}

/// Mutual recursion between two relations terminates too.
#[test]
fn mutual_recursion_terminates() {
    let mut s = Schema::new();
    s.relation("A", &[("x", AttrType::Int)]);
    s.relation("B", &[("x", AttrType::Int)]);
    let mut db = Instance::new(s);
    for x in 0..6i64 {
        db.insert_values("A", [Value::Int(x)]).unwrap();
        db.insert_values("B", [Value::Int(x)]).unwrap();
    }
    let program = parse_program(
        "delta A(x) :- A(x), x = 0.
         delta B(x) :- B(x), delta A(x).
         delta A(x) :- A(x), delta B(x).",
    )
    .unwrap();
    let a = analyze(&program);
    assert!(!a.is_nonrecursive());
    let session = RepairSession::new(db, program).unwrap();
    for sem in Semantics::ALL {
        let r = session.run(sem);
        // Only x = 0 is reachable: ΔA(0) → ΔB(0) → ΔA(0) (already there).
        assert_eq!(r.size(), 2, "{sem}");
        assert!(session.verify_stabilizing(r.deleted()));
    }
}

//! Round-trip properties across substrate boundaries: TSV persistence,
//! program parsing/printing, and instance/state bookkeeping.

use delta_repairs::storage::tsv;
use delta_repairs::{parse_program, AttrType, Instance, Schema, Value};
use proptest::prelude::*;

fn two_rel_schema() -> Schema {
    let mut s = Schema::new();
    s.relation("Person", &[("id", AttrType::Int), ("name", AttrType::Str)]);
    s.relation("Knows", &[("a", AttrType::Int), ("b", AttrType::Int)]);
    s
}

/// Names must survive TSV round trips, so the generator avoids tabs and
/// newlines (the format's only reserved characters).
fn arb_name() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9 _.'-]{0,12}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// to_tsv → from_tsv reproduces exactly the same relation contents.
    #[test]
    fn tsv_round_trip(
        people in prop::collection::btree_map(0i64..50, arb_name(), 0..20),
        knows in prop::collection::btree_set((0i64..50, 0i64..50), 0..20),
    ) {
        let mut db = Instance::new(two_rel_schema());
        for (&id, name) in &people {
            db.insert_values("Person", [Value::Int(id), Value::str(name)]).unwrap();
        }
        for &(a, b) in &knows {
            db.insert_values("Knows", [Value::Int(a), Value::Int(b)]).unwrap();
        }
        let text = tsv::to_tsv(&db);
        let mut reloaded = Instance::new(two_rel_schema());
        let n = tsv::from_tsv(&mut reloaded, &text).expect("own output must parse");
        prop_assert_eq!(n, db.total_rows());
        prop_assert_eq!(reloaded.total_rows(), db.total_rows());
        // Contents match tuple-for-tuple.
        for t in db.all_tuple_ids() {
            prop_assert!(
                reloaded.find(t.rel, db.tuple(t)).is_some(),
                "missing tuple {}",
                db.display_tuple(t)
            );
        }
        // And the round trip is a fixpoint.
        prop_assert_eq!(tsv::to_tsv(&reloaded), text);
    }

    /// Inserting the same tuple twice is a no-op (set semantics), and ids
    /// are stable.
    #[test]
    fn insertion_is_idempotent(
        rows in prop::collection::vec((0i64..10, arb_name()), 1..30),
    ) {
        let mut db = Instance::new(two_rel_schema());
        let mut first_ids = Vec::new();
        for (id, name) in &rows {
            first_ids.push(
                db.insert_values("Person", [Value::Int(*id), Value::str(name)]).unwrap(),
            );
        }
        let before = db.total_rows();
        for ((id, name), &tid) in rows.iter().zip(&first_ids) {
            let again =
                db.insert_values("Person", [Value::Int(*id), Value::str(name)]).unwrap();
            prop_assert_eq!(again, tid, "duplicate insert must return the original id");
        }
        prop_assert_eq!(db.total_rows(), before);
    }
}

/// parse → Display → parse is the identity on programs covering every
/// syntactic feature: constants (int and string), comparisons, delta body
/// atoms, multiple rules and comments.
#[test]
fn program_print_parse_round_trip() {
    let sources = [
        "delta R(x) :- R(x), x = 1.",
        "delta R(x) :- R(x), S(x, y), y != 'abc'.",
        "delta S(x, y) :- S(x, y), delta R(x), T(y).",
        "delta R(x) :- R(x), S(x, y), x < 5, y >= 2.",
        "delta T(y) :- T(y), S(x, y), delta S(x, y).
         delta R(x) :- R(x), x <= -3.",
        "delta Pub(p, t, c) :- Pub(p, t, c), Pub(q, t, d), c != d.",
    ];
    for src in sources {
        let p1 = parse_program(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        let printed = p1.to_string();
        let p2 = parse_program(&printed).unwrap_or_else(|e| panic!("re-parse of {printed:?}: {e}"));
        assert_eq!(p1, p2, "round trip changed the program: {printed}");
    }
}

/// Ill-formed delta rules are rejected: syntax errors at parse time,
/// Definition 3.1 / safety violations when the program is validated
/// against a schema (`RepairSession::new`).
#[test]
fn parser_and_validator_reject_bad_programs() {
    // Purely syntactic failures.
    for src in [
        "delta R(x) :- .",
        "delta R(x) :-",
        "delta :- R(x).",
        "delta R(x)",
    ] {
        assert!(parse_program(src).is_err(), "{src:?} should fail to parse");
    }

    // Well-formed syntax, ill-formed delta rules: rejected at validation.
    let mut s = Schema::new();
    s.relation("R", &[("x", AttrType::Int)]);
    s.relation("S", &[("a", AttrType::Int), ("b", AttrType::Int)]);
    let bad = [
        // Head relation missing from the body (violates Def. 3.1).
        "delta R(x) :- S(x, y).",
        // Head vector must reappear in the body R-atom.
        "delta R(x) :- R(y).",
        // Unsafe comparison variable.
        "delta R(x) :- R(x), z = 1.",
        // Non-delta head.
        "R(x) :- R(x).",
        // Unknown relation.
        "delta Q(x) :- Q(x).",
        // Arity mismatch against the schema.
        "delta R(x, y) :- R(x, y).",
        // Delta atom of a relation outside the schema.
        "delta R(x) :- R(x), delta W(x).",
    ];
    for src in bad {
        let program = parse_program(src).unwrap_or_else(|e| panic!("{src:?}: {e}"));
        let err = delta_repairs::RepairSession::new(Instance::new(s.clone()), program)
            .map(|_| ())
            .unwrap_err();
        assert!(
            matches!(err, delta_repairs::RepairError::Datalog { .. }),
            "{src:?} should be rejected by validation, got {err}"
        );
    }
}

/// Malformed TSV inputs are rejected with errors, not panics.
#[test]
fn tsv_rejects_malformed_documents() {
    let mut db = Instance::new(two_rel_schema());
    // Unknown relation.
    assert!(tsv::from_tsv(&mut db, "# relation Nope\n1\tx\n").is_err());
    // Arity mismatch.
    assert!(tsv::from_tsv(&mut db, "# relation Person\n1\tx\t9\n").is_err());
    // Type mismatch.
    assert!(tsv::from_tsv(&mut db, "# relation Knows\n1\tnotanint\n").is_err());
    // Data before any header.
    assert!(tsv::from_tsv(&mut db, "1\tx\n").is_err());
}

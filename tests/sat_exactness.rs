//! Property-based validation of the Min-Ones SAT solver against brute
//! force, plus option-flag behaviour (the knobs the ablation benches turn).

use delta_repairs::sat::{solve_min_ones, Cnf, Lit, MinOnesOptions, Outcome};
use proptest::prelude::*;

/// Brute-force minimum number of `True`s over all satisfying assignments.
fn brute_force_min_ones(cnf: &Cnf, n_vars: usize) -> Option<u32> {
    let mut best: Option<u32> = None;
    for mask in 0u32..(1 << n_vars) {
        let assignment: Vec<bool> = (0..n_vars).map(|v| mask & (1 << v) != 0).collect();
        if cnf.eval(&assignment) {
            let ones = mask.count_ones();
            best = Some(best.map_or(ones, |b| b.min(ones)));
        }
    }
    best
}

/// A random clause: 1–3 literals over `n` variables with random polarity.
fn arb_clause(n: u32) -> impl Strategy<Value = Vec<(u32, bool)>> {
    prop::collection::vec((0..n, any::<bool>()), 1..=3)
}

fn build_cnf(n: usize, clauses: &[Vec<(u32, bool)>]) -> Cnf {
    let mut cnf = Cnf::new(n);
    for c in clauses {
        let lits: Vec<Lit> = c
            .iter()
            .map(|&(v, neg)| if neg { Lit::neg(v) } else { Lit::pos(v) })
            .collect();
        // Tautological clauses are rejected by add_clause; skipping them
        // leaves an equivalent formula.
        cnf.add_clause(&lits);
    }
    cnf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The solver's minimum equals brute force on every random formula.
    #[test]
    fn solver_matches_brute_force(
        clauses in prop::collection::vec(arb_clause(8), 0..14),
    ) {
        let n = 8;
        let cnf = build_cnf(n, &clauses);
        let expected = brute_force_min_ones(&cnf, n);
        match solve_min_ones(&cnf, &MinOnesOptions::default()) {
            Outcome::Sat(sol) => {
                prop_assert!(sol.optimal, "unbudgeted solve must prove optimality");
                prop_assert!(cnf.eval(&sol.values), "assignment must satisfy the formula");
                prop_assert_eq!(
                    Some(sol.ones as u32), expected,
                    "minimum ones mismatch"
                );
                prop_assert_eq!(
                    sol.values.iter().filter(|&&b| b).count(),
                    sol.ones,
                    "reported count must match the assignment"
                );
            }
            Outcome::Unsat => prop_assert_eq!(expected, None, "solver said UNSAT"),
        }
    }

    /// Decomposition off gives the same minimum (it is purely structural).
    #[test]
    fn decomposition_is_result_invariant(
        clauses in prop::collection::vec(arb_clause(8), 0..12),
    ) {
        let cnf = build_cnf(8, &clauses);
        let with = solve_min_ones(&cnf, &MinOnesOptions::default());
        let without = solve_min_ones(
            &cnf,
            &MinOnesOptions { decompose: false, ..MinOnesOptions::default() },
        );
        match (with, without) {
            (Outcome::Sat(a), Outcome::Sat(b)) => prop_assert_eq!(a.ones, b.ones),
            (Outcome::Unsat, Outcome::Unsat) => {}
            _ => prop_assert!(false, "decomposition changed satisfiability"),
        }
    }

    /// `first_solution_only` returns a valid (possibly suboptimal)
    /// assignment whenever the formula is satisfiable.
    #[test]
    fn first_solution_is_satisfying(
        clauses in prop::collection::vec(arb_clause(8), 0..12),
    ) {
        let cnf = build_cnf(8, &clauses);
        let exact = solve_min_ones(&cnf, &MinOnesOptions::default());
        let fast = solve_min_ones(
            &cnf,
            &MinOnesOptions { first_solution_only: true, ..MinOnesOptions::default() },
        );
        match (exact, fast) {
            (Outcome::Sat(a), Outcome::Sat(b)) => {
                prop_assert!(cnf.eval(&b.values));
                prop_assert!(b.ones >= a.ones);
            }
            (Outcome::Unsat, Outcome::Unsat) => {}
            _ => prop_assert!(false, "first-solution mode changed satisfiability"),
        }
    }
}

/// The greedy-descent incumbent: on pure hitting-set formulas the first
/// solution is already within a small factor of the optimum (this is what
/// the default node budget relies on).
#[test]
fn greedy_incumbent_quality_on_hitting_sets() {
    // 3-uniform hypergraph on 12 vertices, 30 deterministic pseudo-random
    // edges.
    let n = 12;
    let mut cnf = Cnf::new(n);
    let mut x: u64 = 0x243F6A8885A308D3;
    for _ in 0..30 {
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % n as u64) as u32
        };
        let (a, b, c) = (next(), next(), next());
        if a != b && b != c && a != c {
            cnf.add_clause(&[Lit::pos(a), Lit::pos(b), Lit::pos(c)]);
        }
    }
    let exact = solve_min_ones(&cnf, &MinOnesOptions::default())
        .solution()
        .expect("all-true satisfies");
    let fast = solve_min_ones(
        &cnf,
        &MinOnesOptions {
            first_solution_only: true,
            ..MinOnesOptions::default()
        },
    )
    .solution()
    .expect("satisfiable");
    assert!(exact.optimal);
    assert!(
        fast.ones <= 2 * exact.ones.max(1),
        "greedy {} vs exact {}",
        fast.ones,
        exact.ones
    );
}

/// Empty formula: satisfiable with zero ones.
#[test]
fn empty_formula_is_trivially_sat() {
    let cnf = Cnf::new(4);
    let sol = solve_min_ones(&cnf, &MinOnesOptions::default())
        .solution()
        .expect("no clauses");
    assert_eq!(sol.ones, 0);
}

//! The `RepairSession` redesign, pinned from the outside:
//!
//! * **old-vs-new differential** — the deprecated `Repairer` shim and
//!   `RepairSession` must produce bit-identical delete-sets (ids *and*
//!   order) on Figure 1 and on every Table 1 / Table 2 workload, in all
//!   four semantics;
//! * **apply/undo round-trip property** — committing a repair and undoing
//!   it restores the instance exactly: tuple ids, dedup map, composite
//!   index contents (via `Instance: PartialEq`) and stability status;
//! * the request builder, unified error surface and semantics name
//!   round-trip.
#![allow(deprecated)]

use delta_repairs::datagen::{mas, tpch, MasConfig, TpchConfig};
use delta_repairs::{
    parse_program, testkit, Instance, Program, RepairError, RepairRequest, RepairSession, Repairer,
    Semantics,
};
use proptest::prelude::*;

/// Old API and new API, same database, same program: every semantics must
/// agree bit for bit (sorted id vectors compare ordered).
fn assert_old_new_identical(label: &str, db: &Instance, program: Program) {
    let mut old_db = db.clone();
    let old = Repairer::new(&mut old_db, program.clone())
        .unwrap_or_else(|e| panic!("{label}: old API rejected program: {e}"));
    let new = RepairSession::new(db.clone(), program)
        .unwrap_or_else(|e| panic!("{label}: new API rejected program: {e}"));
    for sem in Semantics::ALL {
        let old_result = old.run(&old_db, sem);
        let new_outcome = new.run(sem);
        assert_eq!(
            old_result.deleted,
            new_outcome.deleted(),
            "{label}/{sem}: delete-sets diverged between Repairer and RepairSession"
        );
        assert_eq!(
            old_result.proven_optimal,
            new_outcome.proven_optimal(),
            "{label}/{sem}: optimality flags diverged"
        );
    }
}

#[test]
fn old_and_new_api_agree_on_figure1() {
    assert_old_new_identical(
        "figure1",
        &testkit::figure1_instance(),
        testkit::figure2_program(),
    );
}

#[test]
fn old_and_new_api_agree_on_all_mas_workloads() {
    let data = mas::generate(&MasConfig::scaled(0.02));
    let workloads = delta_repairs::workloads::mas_programs(&data);
    assert_eq!(workloads.len(), 20, "all of Table 1");
    for w in workloads {
        assert_old_new_identical(&w.name, &data.db, w.program);
    }
}

#[test]
fn old_and_new_api_agree_on_all_tpch_workloads() {
    let data = tpch::generate(&TpchConfig::scaled(0.01));
    let workloads = delta_repairs::workloads::tpch_programs(&data);
    assert_eq!(workloads.len(), 6, "all of Table 2");
    for w in workloads {
        assert_old_new_identical(&w.name, &data.db, w.program);
    }
}

// ---------------------------------------------------------------------------
// apply → undo round-trip property.
// ---------------------------------------------------------------------------

/// The random schema/program family of tests/stability_properties.rs,
/// reused here to drive the mutation machinery instead of the semantics.
const RULE_POOL: [&str; 6] = [
    "delta R(x) :- R(x), x = 0.",
    "delta R(x) :- R(x), S(x, y), T(y).",
    "delta S(x, y) :- S(x, y), delta R(x).",
    "delta S(x, y) :- S(x, y), T(y), x != y.",
    "delta T(y) :- T(y), S(x, y), delta R(x).",
    "delta T(y) :- T(y), delta S(x, y).",
];

fn build_db(r: &[i64], s: &[(i64, i64)], t: &[i64]) -> Instance {
    let mut schema = delta_repairs::Schema::new();
    schema.relation("R", &[("x", delta_repairs::AttrType::Int)]);
    schema.relation(
        "S",
        &[
            ("x", delta_repairs::AttrType::Int),
            ("y", delta_repairs::AttrType::Int),
        ],
    );
    schema.relation("T", &[("y", delta_repairs::AttrType::Int)]);
    let mut db = Instance::new(schema);
    for &v in r {
        db.insert_values("R", [delta_repairs::Value::Int(v)])
            .unwrap();
    }
    for &(a, b) in s {
        db.insert_values(
            "S",
            [delta_repairs::Value::Int(a), delta_repairs::Value::Int(b)],
        )
        .unwrap();
    }
    for &v in t {
        db.insert_values("T", [delta_repairs::Value::Int(v)])
            .unwrap();
    }
    db
}

fn build_program(mask: u8) -> Program {
    let src: String = RULE_POOL
        .iter()
        .enumerate()
        .filter(|&(i, _)| mask & (1 << i) != 0)
        .map(|(_, r)| format!("{r}\n"))
        .collect();
    parse_program(&src).expect("pool rules are well-formed")
}

prop_compose! {
    fn arb_db()(
        r in prop::collection::btree_set(0i64..6, 0..5),
        s in prop::collection::btree_set((0i64..6, 0i64..6), 0..8),
        t in prop::collection::btree_set(0i64..6, 0..5),
    ) -> Instance {
        build_db(
            &r.into_iter().collect::<Vec<_>>(),
            &s.into_iter().collect::<Vec<_>>(),
            &t.into_iter().collect::<Vec<_>>(),
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// apply → undo is the identity on the instance — tuple ids, index
    /// contents (the probe indexes built at session construction), dedup
    /// maps and live bits all compare equal — and the stability status
    /// observed before the cycle is restored with them.
    #[test]
    fn apply_then_undo_restores_instance_exactly(
        db in arb_db(),
        mask in 1u8..(1 << RULE_POOL.len()),
        sem_idx in 0usize..4,
    ) {
        let semantics = Semantics::ALL[sem_idx];
        let mut session = RepairSession::new(db, build_program(mask)).expect("valid");
        let before_db = session.db().clone();
        let before_stable = session.is_stable();

        let outcome = session.run(semantics);
        let removed = outcome.apply(&mut session).expect("fresh outcome applies");
        prop_assert_eq!(removed, outcome.size(), "every deleted tuple was live");
        prop_assert!(
            session.is_stable(),
            "{} repair must leave a stable database",
            semantics
        );

        let restored = session.undo().expect("one repair to undo");
        prop_assert_eq!(restored, removed, "undo revives exactly what apply removed");
        prop_assert_eq!(
            session.db(),
            &before_db,
            "instance not restored exactly (ids / indexes / live bits)"
        );
        prop_assert_eq!(session.is_stable(), before_stable, "stability status restored");

        // And the restored session still evaluates identically.
        let again = session.run(semantics);
        prop_assert_eq!(again.deleted(), outcome.deleted());
    }

    /// Durable `delete_batch` keeps evaluation consistent: deleting a
    /// semantics' delete-set by hand leaves a stable database, exactly as
    /// applying the outcome does.
    #[test]
    fn delete_batch_matches_apply(
        db in arb_db(),
        mask in 1u8..(1 << RULE_POOL.len()),
    ) {
        let mut a = RepairSession::new(db.clone(), build_program(mask)).expect("valid");
        let mut b = RepairSession::new(db, build_program(mask)).expect("valid");
        let outcome = a.run(Semantics::End);
        outcome.apply(&mut a).expect("fresh");
        let removed = b.delete_batch(outcome.deleted()).expect("same ids");
        prop_assert_eq!(removed, outcome.size());
        prop_assert_eq!(a.db(), b.db());
        prop_assert!(b.is_stable());
    }
}

// ---------------------------------------------------------------------------
// Error surface and name round-trips at the facade level.
// ---------------------------------------------------------------------------

#[test]
fn semantics_names_round_trip_through_the_facade() {
    for sem in Semantics::ALL {
        let parsed: Semantics = sem.to_string().parse().expect("own name parses");
        assert_eq!(parsed, sem);
    }
    assert!("sideways".parse::<Semantics>().is_err());
}

#[test]
fn every_public_failure_is_a_repair_error() {
    // Planning failure.
    let plan_err = RepairSession::new(
        testkit::figure1_instance(),
        parse_program("delta Nope(x) :- Nope(x).").unwrap(),
    )
    .map(|_| ())
    .unwrap_err();
    assert!(matches!(plan_err, RepairError::Datalog { .. }));

    let mut session =
        RepairSession::new(testkit::figure1_instance(), testkit::figure2_program()).unwrap();

    // Storage failure, with context, through the batch mutators.
    let ins_err = session
        .insert_batch("NoSuchRelation", [[delta_repairs::Value::Int(1)]])
        .unwrap_err();
    assert!(matches!(ins_err, RepairError::Storage { .. }));
    assert!(ins_err.to_string().contains("insert into NoSuchRelation"));

    // Request misuse — the conditions that used to be solver panics.
    let req_err = session
        .repair(&RepairRequest::new(Semantics::Independent).node_budget(0))
        .unwrap_err();
    assert!(matches!(req_err, RepairError::InvalidRequest(_)));

    // Undo with nothing applied.
    assert!(matches!(session.undo(), Err(RepairError::NothingToUndo)));

    // Stale outcome after a mutation.
    let outcome = session.run(Semantics::End);
    session
        .insert_batch(
            "Grant",
            [[
                delta_repairs::Value::Int(9),
                delta_repairs::Value::str("DFG"),
            ]],
        )
        .unwrap();
    assert!(matches!(
        outcome.apply(&mut session),
        Err(RepairError::StaleOutcome { .. })
    ));
}

/// Mutating through the session keeps serving correct repairs with no
/// re-planning: the scenario of the module docs, verified end to end.
#[test]
fn session_serves_repairs_across_mutations() {
    let mut session =
        RepairSession::new(testkit::figure1_instance(), testkit::figure2_program()).unwrap();
    assert_eq!(session.run(Semantics::Independent).size(), 3);

    // New ERC grant for Maggie: the cascade widens.
    session
        .insert_batch(
            "Grant",
            [[
                delta_repairs::Value::Int(3),
                delta_repairs::Value::str("ERC"),
            ]],
        )
        .unwrap();
    session
        .insert_batch(
            "AuthGrant",
            [[delta_repairs::Value::Int(2), delta_repairs::Value::Int(3)]],
        )
        .unwrap();
    let ind = session.run(Semantics::Independent);
    assert_eq!(ind.size(), 5, "two grants + three links now sever");
    assert!(session.verify_stabilizing(ind.deleted()));

    // Commit, then undo back to the widened database.
    let before = session.db().clone();
    ind.apply(&mut session).unwrap();
    assert!(session.is_stable());
    session.undo().unwrap();
    assert_eq!(session.db(), &before);
}

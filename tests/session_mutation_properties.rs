//! Mutation-machinery properties of the long-lived `RepairSession`.
//!
//! Arbitrary interleavings of `insert_batch` / `delete_batch` /
//! `restore_batch` / `apply` / `undo` / `compact` must leave every
//! composite index (and dedup map) **bit-identical to a from-scratch
//! rebuild** over the live rows — the invariant
//! `Instance::indexes_consistent` checks — and every planner statistic
//! (live cardinalities, per-column distinct counts, MCV sketches)
//! bit-identical to a from-scratch recount — `Instance::stats_consistent`
//! — and must keep the incrementally served end repair bit-identical to a
//! fresh session's full recompute, whatever the churn history.

use delta_repairs::{
    parse_program, Instance, Program, RepairRequest, RepairSession, Semantics, TupleId, Value,
};
use proptest::prelude::*;

const RULE_POOL: [&str; 6] = [
    "delta R(x) :- R(x), x = 0.",
    "delta R(x) :- R(x), S(x, y), T(y).",
    "delta S(x, y) :- S(x, y), delta R(x).",
    "delta S(x, y) :- S(x, y), T(y), x != y.",
    "delta T(y) :- T(y), S(x, y), delta R(x).",
    "delta T(y) :- T(y), delta S(x, y).",
];

fn build_db(r: &[i64], s: &[(i64, i64)], t: &[i64]) -> Instance {
    let mut schema = delta_repairs::Schema::new();
    schema.relation("R", &[("x", delta_repairs::AttrType::Int)]);
    schema.relation(
        "S",
        &[
            ("x", delta_repairs::AttrType::Int),
            ("y", delta_repairs::AttrType::Int),
        ],
    );
    schema.relation("T", &[("y", delta_repairs::AttrType::Int)]);
    let mut db = Instance::new(schema);
    for &v in r {
        db.insert_values("R", [Value::Int(v)]).unwrap();
    }
    for &(a, b) in s {
        db.insert_values("S", [Value::Int(a), Value::Int(b)])
            .unwrap();
    }
    for &v in t {
        db.insert_values("T", [Value::Int(v)]).unwrap();
    }
    db
}

fn build_program(mask: u8) -> Program {
    let src: String = RULE_POOL
        .iter()
        .enumerate()
        .filter(|&(i, _)| mask & (1 << i) != 0)
        .map(|(_, r)| format!("{r}\n"))
        .collect();
    parse_program(&src).expect("pool rules are well-formed")
}

prop_compose! {
    fn arb_db()(
        r in prop::collection::btree_set(0i64..6, 0..5),
        s in prop::collection::btree_set((0i64..6, 0i64..6), 0..8),
        t in prop::collection::btree_set(0i64..6, 0..5),
    ) -> Instance {
        build_db(
            &r.into_iter().collect::<Vec<_>>(),
            &s.into_iter().collect::<Vec<_>>(),
            &t.into_iter().collect::<Vec<_>>(),
        )
    }
}

/// One step of the interleaving, decoded from `(op, a, b)`.
fn apply_op(session: &mut RepairSession, op: u8, a: usize, b: usize) {
    match op % 6 {
        0 => {
            // Insert 1–3 rows; values overlap the 0..6 range half the time
            // so new rows join (and re-create previously deleted values).
            let rels = ["R", "S", "T"];
            let rel = rels[a % 3];
            let val = |k: usize| Value::Int(((a + k * b) % 12) as i64);
            for k in 0..1 + b % 3 {
                let row: Vec<Value> = match rel {
                    "S" => vec![val(k), val(k + 1)],
                    _ => vec![val(k)],
                };
                session.insert_batch(rel, [row]).expect("typed rows");
            }
        }
        1 => {
            let live: Vec<TupleId> = session.db().all_tuple_ids().collect();
            if !live.is_empty() {
                let ids: Vec<TupleId> =
                    (0..1 + b % 3).map(|k| live[(a + k) % live.len()]).collect();
                session.delete_batch(&ids).expect("live ids");
            }
        }
        2 => {
            let sem = Semantics::ALL[b % 4];
            let outcome = session.run(sem);
            outcome.apply(session).expect("fresh outcome");
        }
        3 => {
            // Undo whatever is on the stack, if anything.
            let _ = session.undo();
        }
        4 => {
            session.compact(b as f64 / 10.0);
        }
        _ => {
            // Delete then immediately resurrect: the round-trip must leave
            // the stats exactly where a recount would (tombstone out, then
            // back in — not "close", bit-identical).
            let live: Vec<TupleId> = session.db().all_tuple_ids().collect();
            if !live.is_empty() {
                let ids: Vec<TupleId> =
                    (0..1 + b % 3).map(|k| live[(a + k) % live.len()]).collect();
                session.delete_batch(&ids).expect("live ids");
                session.restore_batch(&ids).expect("just deleted");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After every step of an arbitrary interleaving, the composite
    /// indexes and dedup maps equal a from-scratch rebuild, and at the end
    /// the incrementally maintained end repair equals a fresh session's
    /// full recompute.
    #[test]
    fn interleavings_keep_indexes_and_checkpoint_exact(
        db in arb_db(),
        mask in 1u8..(1 << RULE_POOL.len()),
        ops in prop::collection::vec((0u8..6, 0usize..64, 0usize..64), 0..24),
    ) {
        let mut session = RepairSession::new(db, build_program(mask)).expect("valid");
        session.run(Semantics::End); // prime the checkpoint
        for &(op, a, b) in &ops {
            apply_op(&mut session, op, a, b);
            prop_assert!(
                session.db().indexes_consistent(),
                "op {op} (a={a}, b={b}) desynced an index from the live rows"
            );
            prop_assert!(
                session.db().stats_consistent(),
                "op {op} (a={a}, b={b}) drifted a planner statistic off the recount"
            );
        }
        let inc = session.run(Semantics::End);
        let fresh = RepairSession::new(session.db().clone(), session.program().clone())
            .expect("valid")
            .repair(&RepairRequest::new(Semantics::End).incremental(false))
            .expect("valid request");
        prop_assert_eq!(
            inc.deleted(),
            fresh.deleted(),
            "churn history leaked into the incremental end answer"
        );
        // The other semantics read the same mutated storage through full
        // paths; they must agree with the fresh session too.
        for sem in [Semantics::Independent, Semantics::Step, Semantics::Stage] {
            let a = session.run(sem);
            let b = RepairSession::new(session.db().clone(), session.program().clone())
                .expect("valid")
                .run(sem);
            prop_assert_eq!(a.deleted(), b.deleted(), "{} diverged", sem);
        }
    }

    /// Compaction alone is a no-op on the observable instance: equality,
    /// index consistency, and every probe result.
    #[test]
    fn compact_is_invisible(
        db in arb_db(),
        mask in 1u8..(1 << RULE_POOL.len()),
        kill in prop::collection::btree_set(0usize..16, 0..8),
    ) {
        let mut session = RepairSession::new(db, build_program(mask)).expect("valid");
        let live: Vec<TupleId> = session.db().all_tuple_ids().collect();
        let ids: Vec<TupleId> = kill.iter().filter_map(|&i| live.get(i).copied()).collect();
        session.delete_batch(&ids).expect("live ids");
        let before = session.db().clone();
        let end_before = session.run(Semantics::End);
        session.compact(0.0);
        prop_assert_eq!(session.db(), &before, "compaction changed the instance value");
        prop_assert!(session.db().indexes_consistent());
        prop_assert!(session.db().stats_consistent(), "compaction drifted a statistic");
        let end_after = session.run(Semantics::End);
        prop_assert_eq!(end_before.deleted(), end_after.deleted());
        prop_assert!(end_after.served_incrementally(), "compaction evicted the checkpoint");
    }
}

//! Property-based tests: random databases × random delta programs, checking
//! the paper's invariants hold universally, not just on the constructed
//! examples.
//!
//! * Proposition 3.18 — every semantics returns a stabilizing set;
//! * Figure 3 / Proposition 3.20 — size and containment relations;
//! * Proposition 3.9 — stage determinism;
//! * the heuristic algorithms never beat the exact references, and the
//!   exact references never beat independent semantics.

use delta_repairs::{
    parse_program, AttrType, Instance, Program, RepairSession, Schema, Semantics, Value,
};
use proptest::prelude::*;

/// A pool of well-formed delta rules over the schema
/// `R(x)`, `S(x, y)`, `T(y)`. Subsets of this pool form the programs under
/// test; together they cover seeds, DC-style joins, comparisons and
/// Δ-cascades in every direction.
const RULE_POOL: [&str; 10] = [
    "delta R(x) :- R(x), x = 0.",
    "delta R(x) :- R(x), S(x, y), T(y).",
    "delta R(x) :- R(x), S(x, x).",
    "delta R(x) :- R(x), delta T(y), S(x, y).",
    "delta S(x, y) :- S(x, y), delta R(x).",
    "delta S(x, y) :- S(x, y), R(x), T(y).",
    "delta S(x, y) :- S(x, y), T(y), x != y.",
    "delta T(y) :- T(y), S(x, y), delta R(x).",
    "delta T(y) :- T(y), delta S(x, y).",
    "delta T(y) :- T(y), S(x, y), R(x).",
];

fn schema() -> Schema {
    let mut s = Schema::new();
    s.relation("R", &[("x", AttrType::Int)]);
    s.relation("S", &[("x", AttrType::Int), ("y", AttrType::Int)]);
    s.relation("T", &[("y", AttrType::Int)]);
    s
}

fn build_db(r: &[i64], s: &[(i64, i64)], t: &[i64]) -> Instance {
    let mut db = Instance::new(schema());
    for &v in r {
        db.insert_values("R", [Value::Int(v)]).unwrap();
    }
    for &(a, b) in s {
        db.insert_values("S", [Value::Int(a), Value::Int(b)])
            .unwrap();
    }
    for &v in t {
        db.insert_values("T", [Value::Int(v)]).unwrap();
    }
    db
}

fn build_program(mask: u16) -> Program {
    let src: String = RULE_POOL
        .iter()
        .enumerate()
        .filter(|&(i, _)| mask & (1 << i) != 0)
        .map(|(_, r)| format!("{r}\n"))
        .collect();
    parse_program(&src).expect("pool rules are well-formed")
}

prop_compose! {
    /// A random database: up to 5 R values, 8 S pairs, 5 T values over a
    /// domain of 6 constants (dense enough to join).
    fn arb_db()(
        r in prop::collection::btree_set(0i64..6, 0..5),
        s in prop::collection::btree_set((0i64..6, 0i64..6), 0..8),
        t in prop::collection::btree_set(0i64..6, 0..5),
    ) -> Instance {
        build_db(
            &r.into_iter().collect::<Vec<_>>(),
            &s.into_iter().collect::<Vec<_>>(),
            &t.into_iter().collect::<Vec<_>>(),
        )
    }
}

prop_compose! {
    /// A random nonempty subset of the rule pool.
    fn arb_program()(mask in 1u16..(1 << RULE_POOL.len())) -> Program {
        build_program(mask)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Prop. 3.18 + Fig. 3 on arbitrary instances and programs.
    #[test]
    fn every_semantics_stabilizes_and_figure3_holds(
        db in arb_db(),
        program in arb_program(),
    ) {
        let session = RepairSession::new(db, program).expect("valid");
        let [ind, step, stage, end] = session.run_all();
        for r in [&ind, &step, &stage, &end] {
            prop_assert!(
                session.verify_stabilizing(r.deleted()),
                "{} returned a non-stabilizing set {:?}",
                r.semantics(),
                r.deleted()
            );
        }
        prop_assert!(
            delta_repairs::relationships::check_figure3_invariants(
                ind.as_result(), step.as_result(), stage.as_result(), end.as_result())
                .is_none(),
            "figure-3 invariant violated: ind={} step={} stage={} end={}",
            ind.size(), step.size(), stage.size(), end.size()
        );
    }

    /// Prop. 3.9: stage (and end) are deterministic fixpoints — same result
    /// on repeated and rule-permuted runs.
    #[test]
    fn stage_and_end_are_deterministic(
        db in arb_db(),
        program in arb_program(),
    ) {
        let mut reversed = program.clone();
        reversed.rules.reverse();
        let a = RepairSession::new(db.clone(), program).expect("valid");
        let b = RepairSession::new(db, reversed).expect("valid");
        for sem in [Semantics::Stage, Semantics::End] {
            let r1 = a.run(sem);
            let r2 = a.run(sem);
            let r3 = b.run(sem);
            prop_assert!(delta_repairs::relationships::set_eq(r1.deleted(), r2.deleted()));
            prop_assert!(delta_repairs::relationships::set_eq(r1.deleted(), r3.deleted()), "{sem} depends on rule order");
        }
    }

    /// Algorithm 1 with the default budget is exact on these small
    /// instances: it matches the subset-enumeration reference.
    #[test]
    fn independent_matches_exact_reference(
        db in arb_db(),
        program in arb_program(),
    ) {
        let session = RepairSession::new(db, program).expect("valid");
        let ind = session.run(Semantics::Independent);
        if let Some(exact) =
            delta_repairs::independent::optimal(session.db(), session.evaluator(), 14)
        {
            prop_assert_eq!(
                ind.size(),
                exact.len(),
                "Algorithm 1 must be exact on small instances"
            );
        }
    }

    /// The greedy Algorithm 2 never beats the exact step search, and the
    /// exact step search never beats independent semantics.
    #[test]
    fn step_greedy_exact_and_independent_are_ordered(
        db in arb_db(),
        program in arb_program(),
    ) {
        let session = RepairSession::new(db, program).expect("valid");
        let greedy = session.run(Semantics::Step);
        let ind = session.run(Semantics::Independent);
        if let Some(exact) = delta_repairs::step::optimal(session.db(), session.evaluator(), 200_000) {
            prop_assert!(
                greedy.size() >= exact.len(),
                "greedy ({}) below the exact step minimum ({})",
                greedy.size(), exact.len()
            );
            prop_assert!(
                exact.len() >= ind.size(),
                "step minimum ({}) below independent ({})",
                exact.len(), ind.size()
            );
            prop_assert!(session.verify_stabilizing(&exact));
        }
    }

    /// Deleting the result of any semantics and repairing again is a no-op
    /// (repairs are idempotent on the repaired database).
    #[test]
    fn repairs_are_idempotent(
        db in arb_db(),
        program in arb_program(),
    ) {
        let mut session = RepairSession::new(db, program).expect("valid");
        let end = session.run(Semantics::End);
        // Commit the repair: the deleted tuples leave the database durably
        // and *without a delta record* — the delta relations start empty on
        // the next run, so only rules whose bodies are delta-free can fire.
        end.apply(&mut session).expect("fresh outcome");
        let again = session.run(Semantics::End);
        // Any further deletions could only come from delta-free rules that
        // the first pass already exhausted, so the result must be empty.
        prop_assert_eq!(again.size(), 0, "end repair must be idempotent");
    }
}

//! The trigger engine against the four semantics — Section 6's
//! "Comparison with Triggers", mechanized on the running example and the
//! order-sensitivity scenarios of programs 3/4/8.

use delta_repairs::triggers::{run_triggers, triggers_from_program, FiringOrder, Trigger};
use delta_repairs::{parse_program, testkit, RepairSession, Semantics};

/// Program 5-style pure cascade: triggers and all four semantics agree
/// (the paper: "Both PostgreSQL and MySQL triggers have led to the same
/// result as the four semantics for program 5").
#[test]
fn cascade_triggers_agree_with_semantics() {
    let program = parse_program(
        "delta Grant(g, n) :- Grant(g, n), n = 'ERC'.
         delta AuthGrant(a, g) :- AuthGrant(a, g), delta Grant(g, n).",
    )
    .unwrap();
    let session = RepairSession::new(testkit::figure1_instance(), program.clone()).unwrap();
    let db = session.db();
    let triggers = triggers_from_program(&program);
    for order in [FiringOrder::Alphabetical, FiringOrder::CreationOrder] {
        let run = run_triggers(db, session.evaluator(), &triggers, order);
        assert!(run.stable, "cascade triggers stabilize");
        for sem in Semantics::ALL {
            let r = session.run(sem);
            assert_eq!(
                testkit::names_of(db, &run.deleted),
                testkit::names_of(db, r.deleted()),
                "{order:?} vs {sem}"
            );
        }
    }
}

/// Two triggers on the same event with the same body (the paper's program
/// 3/4 scenario): PostgreSQL's alphabetical policy decides by *name*,
/// MySQL's by creation order, and the choices produce different deletion
/// sets; step semantics deletes strictly fewer tuples than the unlucky
/// ordering.
#[test]
fn same_event_triggers_depend_on_ordering() {
    // Delete either the Author or their AuthGrant link when both exist for
    // grant 2.
    let program = parse_program(
        "delta Author(a, n) :- Author(a, n), AuthGrant(a, g), g = 2.
         delta AuthGrant(a, g) :- Author(a, n), AuthGrant(a, g), g = 2.",
    )
    .unwrap();
    let session = RepairSession::new(testkit::figure1_instance(), program.clone()).unwrap();
    let (db, ev) = (session.db(), session.evaluator());

    // PostgreSQL: `a_…` fires before `b_…` regardless of intent.
    let author_first = vec![
        Trigger {
            name: "a_authors".into(),
            rule: 0,
        },
        Trigger {
            name: "b_links".into(),
            rule: 1,
        },
    ];
    let link_first = vec![
        Trigger {
            name: "a_links".into(),
            rule: 1,
        },
        Trigger {
            name: "b_authors".into(),
            rule: 0,
        },
    ];
    let pg1 = run_triggers(db, ev, &author_first, FiringOrder::Alphabetical);
    let pg2 = run_triggers(db, ev, &link_first, FiringOrder::Alphabetical);
    assert!(pg1.stable && pg2.stable);
    // Whichever rule fires first consumes the joint bodies; the result
    // differs by *relation*, not size.
    let names1 = testkit::names_of(db, &pg1.deleted);
    let names2 = testkit::names_of(db, &pg2.deleted);
    assert_ne!(names1, names2, "naming decided the outcome");
    assert!(names1.iter().all(|n| n.starts_with("Author")));
    assert!(names2.iter().all(|n| n.starts_with("AuthGrant")));

    // MySQL: same triggers, creation order decides instead of names.
    let my1 = run_triggers(db, ev, &author_first, FiringOrder::CreationOrder);
    assert_eq!(testkit::names_of(db, &my1.deleted), names1);

    // All four semantics are order-insensitive; step/independent pick 2
    // tuples (one per violating pair), matching the smaller trigger run.
    let step = session.run(Semantics::Step);
    assert_eq!(step.size(), 2);
    assert!(step.size() <= pg1.deleted.len());
    assert!(step.size() <= pg2.deleted.len());
}

/// Program 8's scenario: with a mix of immediate and Δ-triggered rules the
/// trigger cascade over-deletes relative to step semantics but remains a
/// stabilizing set.
#[test]
fn trigger_cascades_stabilize_but_over_delete() {
    let program = testkit::figure2_program();
    let session = RepairSession::new(testkit::figure1_instance(), program.clone()).unwrap();
    let triggers = triggers_from_program(&program);
    let run = run_triggers(
        session.db(),
        session.evaluator(),
        &triggers,
        FiringOrder::CreationOrder,
    );
    assert!(run.stable);
    assert!(session.verify_stabilizing(&run.deleted));
    let step = session.run(Semantics::Step);
    assert!(
        step.size() <= run.deleted.len(),
        "step ({}) must not exceed the trigger cascade ({})",
        step.size(),
        run.deleted.len()
    );
}

/// Triggers on a stable database do nothing.
#[test]
fn triggers_are_noops_on_stable_databases() {
    let program = parse_program(
        "delta Grant(g, n) :- Grant(g, n), n = 'SNSF'.", // no such grant
    )
    .unwrap();
    let session = RepairSession::new(testkit::figure1_instance(), program.clone()).unwrap();
    let triggers = triggers_from_program(&program);
    let run = run_triggers(
        session.db(),
        session.evaluator(),
        &triggers,
        FiringOrder::Alphabetical,
    );
    assert!(run.deleted.is_empty());
    assert_eq!(run.activations, 0);
    assert!(run.stable);
}

/// Activations count statement-level firings: the Figure 2 cascade fires
/// once per seed and once per reactive deletion batch.
#[test]
fn activation_counting() {
    let program = parse_program(
        "delta Grant(g, n) :- Grant(g, n), n = 'ERC'.
         delta AuthGrant(a, g) :- AuthGrant(a, g), delta Grant(g, n).",
    )
    .unwrap();
    let session = RepairSession::new(testkit::figure1_instance(), program.clone()).unwrap();
    let triggers = triggers_from_program(&program);
    let run = run_triggers(
        session.db(),
        session.evaluator(),
        &triggers,
        FiringOrder::CreationOrder,
    );
    // Seed statement (1 activation) + reactive trigger on the deleted grant
    // (1 activation deleting both AuthGrant rows at once).
    assert_eq!(run.activations, 2);
    assert_eq!(run.deleted.len(), 3); // g2, ag2, ag3
}

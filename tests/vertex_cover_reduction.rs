//! Proposition 4.2 — the NP-hardness reduction from minimum Vertex Cover,
//! run forwards: build the reduction's database for concrete graphs and
//! check that `|Ind(P, D)|` and `|Step(P, D)|` equal the graphs' true
//! minimum vertex cover sizes.

use delta_repairs::{parse_program, AttrType, Instance, RepairSession, Schema, Semantics, Value};

/// The reduction's database: `E(u,v), E(v,u)` per edge, `VC(v)` per vertex.
fn reduction_db(n: usize, edges: &[(i64, i64)]) -> Instance {
    let mut s = Schema::new();
    s.relation("E", &[("u", AttrType::Int), ("v", AttrType::Int)]);
    s.relation("VC", &[("v", AttrType::Int)]);
    let mut db = Instance::new(s);
    for &(u, v) in edges {
        db.insert_values("E", [Value::Int(u), Value::Int(v)])
            .unwrap();
        db.insert_values("E", [Value::Int(v), Value::Int(u)])
            .unwrap();
    }
    for v in 0..n as i64 {
        db.insert_values("VC", [Value::Int(v)]).unwrap();
    }
    db
}

/// Exact minimum vertex cover by subset enumeration (graphs are tiny).
fn min_vertex_cover(n: usize, edges: &[(i64, i64)]) -> usize {
    (0..=n)
        .find(|&k| {
            subsets_of_size(n, k).any(|mask| {
                edges
                    .iter()
                    .all(|&(u, v)| mask & (1 << u) != 0 || mask & (1 << v) != 0)
            })
        })
        .expect("the full vertex set is always a cover")
}

fn subsets_of_size(n: usize, k: usize) -> impl Iterator<Item = u32> {
    (0u32..1 << n).filter(move |m| m.count_ones() as usize == k)
}

/// The three-rule program of the independent-semantics reduction.
fn independent_program() -> delta_repairs::Program {
    parse_program(
        "delta VC(x) :- E(x, y), VC(x), VC(y).
         delta VC(x) :- VC(x), delta E(x, y).
         delta VC(y) :- VC(y), delta E(x, y).",
    )
    .unwrap()
}

/// The single-rule program of the step-semantics reduction.
fn step_program() -> delta_repairs::Program {
    parse_program("delta VC(x) :- E(x, y), VC(x), VC(y).").unwrap()
}

fn graphs() -> Vec<(usize, Vec<(i64, i64)>)> {
    vec![
        // Triangle: VC = 2.
        (3, vec![(0, 1), (1, 2), (2, 0)]),
        // Star K_{1,4}: VC = 1.
        (5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]),
        // Path of 5 vertices: VC = 2.
        (5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]),
        // C4 + chord: VC = 2.
        (4, vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]),
        // Two disjoint triangles: VC = 4.
        (6, vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]),
        // Petersen-ish fragment: K4, VC = 3.
        (4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]),
        // Empty graph: VC = 0 (already stable).
        (3, vec![]),
    ]
}

#[test]
fn independent_result_size_equals_minimum_vertex_cover() {
    for (n, edges) in graphs() {
        let vc = min_vertex_cover(n, &edges);
        let session = RepairSession::new(reduction_db(n, &edges), independent_program()).unwrap();
        let ind = session.run(Semantics::Independent);
        assert_eq!(
            ind.size(),
            vc,
            "graph n={n}, edges={edges:?}: |Ind| must equal the VC number"
        );
        // All deleted tuples are VC tuples (rules 2–3 make E-deletion
        // unprofitable, as the proof argues).
        let vc_rel = session.db().schema().rel_id("VC").unwrap();
        assert!(ind.deleted().iter().all(|t| t.rel == vc_rel));
        assert!(session.verify_stabilizing(ind.deleted()));
    }
}

#[test]
fn exact_step_result_size_equals_minimum_vertex_cover() {
    for (n, edges) in graphs() {
        let vc = min_vertex_cover(n, &edges);
        let session = RepairSession::new(reduction_db(n, &edges), step_program()).unwrap();
        // `Step(P, D)` proper is the minimum over firing sequences — the
        // exact search realizes Definition 3.5.
        let exact = delta_repairs::step::optimal(session.db(), session.evaluator(), 1 << 22)
            .expect("reduction instances are small");
        assert_eq!(
            exact.len(),
            vc,
            "graph n={n}, edges={edges:?}: |Step| must equal the VC number"
        );
        assert!(session.verify_stabilizing(&exact));
    }
}

/// Algorithm 2 is a heuristic for the NP-hard minimum (that is the point of
/// Prop. 4.2): it always returns a stabilizing, step-derivable set that is
/// at least as large as the true minimum. On the path P5 it genuinely
/// over-deletes (picks the degree-2 center first), so equality cannot be
/// asserted here.
#[test]
fn greedy_step_bounds_minimum_vertex_cover_from_above() {
    for (n, edges) in graphs() {
        let vc = min_vertex_cover(n, &edges);
        let session = RepairSession::new(reduction_db(n, &edges), step_program()).unwrap();
        let greedy = session.run(Semantics::Step);
        assert!(
            greedy.size() >= vc,
            "graph n={n}, edges={edges:?}: greedy below the optimum is impossible"
        );
        assert!(
            greedy.size() <= 2 * vc.max(1),
            "graph n={n}, edges={edges:?}: max-benefit greedy stays within 2x on these graphs"
        );
        assert!(session.verify_stabilizing(greedy.deleted()));
    }
}

/// The exact exponential references agree with the heuristics on these
/// instances (the paper's "manually checked" validation, mechanized).
#[test]
fn exact_references_agree_on_reduction_instances() {
    for (n, edges) in graphs() {
        if n > 4 {
            continue; // keep the exponential searches tiny
        }
        let session = RepairSession::new(reduction_db(n, &edges), step_program()).unwrap();
        let greedy = session.run(Semantics::Step);
        let exact = delta_repairs::step::optimal(session.db(), session.evaluator(), 1 << 20)
            .expect("small instance");
        assert_eq!(greedy.size(), exact.len(), "n={n}, edges={edges:?}");

        let s2 = RepairSession::new(reduction_db(n, &edges), independent_program()).unwrap();
        let ind = s2.run(Semantics::Independent);
        let exact_ind = delta_repairs::independent::optimal(s2.db(), s2.evaluator(), 24)
            .expect("small universe");
        assert_eq!(ind.size(), exact_ind.len(), "n={n}, edges={edges:?}");
    }
}

//! End-to-end pipeline over the paper's 26 workloads at test scale:
//! generate data, wire constants, run all four semantics, verify stability
//! and the Figure 3 invariants, and spot-check the Table 3 containment
//! pattern where it is structural.

use delta_repairs::datagen::{mas, tpch, MasConfig, TpchConfig};
use delta_repairs::relationships::{check_figure3_invariants, is_subset, set_eq};
use delta_repairs::workloads::{mas_programs, tpch_programs, ProgramClass, Workload};
use delta_repairs::{Instance, RepairSession};

fn run_workload(
    base: &Instance,
    w: &Workload,
) -> (RepairSession, [delta_repairs::RepairResult; 4]) {
    let session = RepairSession::new(base.clone(), w.program.clone())
        .unwrap_or_else(|e| panic!("workload {}: {e}", w.name));
    let results = session
        .run_all()
        .map(delta_repairs::RepairOutcome::into_result);
    (session, results)
}

#[test]
fn all_mas_workloads_stabilize_and_satisfy_figure3() {
    let data = mas::generate(&MasConfig::scaled(0.02));
    for w in mas_programs(&data) {
        let (session, [ind, step, stage, end]) = run_workload(&data.db, &w);
        for r in [&ind, &step, &stage, &end] {
            assert!(
                session.verify_stabilizing(&r.deleted),
                "{} under {} is not stabilizing",
                w.name,
                r.semantics
            );
        }
        assert!(
            check_figure3_invariants(&ind, &step, &stage, &end).is_none(),
            "{}: figure-3 violated (ind={} step={} stage={} end={})",
            w.name,
            ind.size(),
            step.size(),
            stage.size(),
            end.size()
        );
    }
}

#[test]
fn all_tpch_workloads_stabilize_and_satisfy_figure3() {
    let data = tpch::generate(&TpchConfig::scaled(0.01));
    for w in tpch_programs(&data) {
        let (session, [ind, step, stage, end]) = run_workload(&data.db, &w);
        for r in [&ind, &step, &stage, &end] {
            assert!(
                session.verify_stabilizing(&r.deleted),
                "{} under {} is not stabilizing",
                w.name,
                r.semantics
            );
        }
        assert!(
            check_figure3_invariants(&ind, &step, &stage, &end).is_none(),
            "{}",
            w.name
        );
    }
}

/// Structural rows of Table 3 that must hold regardless of data scale.
#[test]
fn table3_structural_rows() {
    let data = mas::generate(&MasConfig::scaled(0.02));
    let workloads = mas_programs(&data);
    let by_name = |n: &str| workloads.iter().find(|w| w.name == n).unwrap();

    // Program 2: the independent result is a single non-derivable Author
    // tuple, so Ind ⊄ Stage and Ind ⊄ Step (the paper's ✗ ✗ row).
    let (_, [ind, step, stage, _]) = run_workload(&data.db, by_name("mas-02"));
    assert_eq!(ind.size(), 1);
    assert!(
        !is_subset(&ind.deleted, &stage.deleted),
        "mas-02: Ind ⊄ Stage"
    );
    assert!(
        !is_subset(&ind.deleted, &step.deleted),
        "mas-02: Ind ⊄ Step"
    );

    // Programs 3: two rules share a body; stage deletes both relations,
    // step deletes one tuple — Step ≠ Stage but Ind ⊆ Step (✗ ✓ ✓ row).
    let (_, [ind3, step3, stage3, _]) = run_workload(&data.db, by_name("mas-03"));
    assert!(
        !set_eq(&step3.deleted, &stage3.deleted),
        "mas-03: Step ≠ Stage"
    );
    assert!(
        is_subset(&ind3.deleted, &step3.deleted),
        "mas-03: Ind ⊆ Step"
    );
    assert_eq!(ind3.size(), 1);
    assert_eq!(step3.size(), 1);

    // Programs 16–20 are pure cascades: every derivable tuple must go, all
    // three containments hold (the ✓ ✓ ✓ rows) and all four sizes agree.
    for name in ["mas-16", "mas-17", "mas-18", "mas-19", "mas-20"] {
        let (_, [ind, step, stage, end]) = run_workload(&data.db, by_name(name));
        assert!(
            set_eq(&step.deleted, &stage.deleted),
            "{name}: Step = Stage"
        );
        assert!(
            is_subset(&ind.deleted, &stage.deleted),
            "{name}: Ind ⊆ Stage"
        );
        assert!(is_subset(&ind.deleted, &step.deleted), "{name}: Ind ⊆ Step");
        assert_eq!(ind.size(), end.size(), "{name}: cascades leave no choice");
    }

    // Programs 11–15: single DC-style rule with growing joins — the
    // independent result size must not increase with join depth
    // (Figure 6b's shape).
    let sizes: Vec<usize> = ["mas-11", "mas-12", "mas-13", "mas-14", "mas-15"]
        .iter()
        .map(|n| run_workload(&data.db, by_name(n)).1[0].size())
        .collect();
    for w in sizes.windows(2) {
        assert!(w[1] <= w[0], "Ind size must shrink with joins: {sizes:?}");
    }
    // End/stage/step delete only Cite tuples there, so their sizes agree
    // across 11–15.
    let end_sizes: Vec<usize> = ["mas-11", "mas-12", "mas-13", "mas-14", "mas-15"]
        .iter()
        .map(|n| run_workload(&data.db, by_name(n)).1[3].size())
        .collect();
    assert!(end_sizes.windows(2).all(|w| w[0] == w[1]), "{end_sizes:?}");
}

/// The paper's class taxonomy is wired into the workload set.
#[test]
fn workload_classes_cover_all_three() {
    let data = mas::generate(&MasConfig::scaled(0.02));
    let workloads = mas_programs(&data);
    assert_eq!(workloads.len(), 20);
    for class in [
        ProgramClass::DcLike,
        ProgramClass::Cascade,
        ProgramClass::Mixed,
    ] {
        assert!(
            workloads.iter().any(|w| w.class == class),
            "missing class {class:?}"
        );
    }
    let tdata = tpch::generate(&TpchConfig::scaled(0.01));
    assert_eq!(tpch_programs(&tdata).len(), 6);
}

/// Dataset generation is deterministic and scale behaves monotonically.
#[test]
fn generators_are_deterministic_and_scale() {
    let a = mas::generate(&MasConfig::scaled(0.02));
    let b = mas::generate(&MasConfig::scaled(0.02));
    assert_eq!(a.db.total_rows(), b.db.total_rows());
    assert_eq!(a.busiest_org, b.busiest_org);
    assert_eq!(a.common_name, b.common_name);
    let big = mas::generate(&MasConfig::scaled(0.05));
    assert!(big.db.total_rows() > a.db.total_rows());

    let t1 = tpch::generate(&TpchConfig::scaled(0.01));
    let t2 = tpch::generate(&TpchConfig::scaled(0.01));
    assert_eq!(t1.db.total_rows(), t2.db.total_rows());
}
